package scan

import "math/bits"

// Blocked Bloom filters for equality pruning on string/bytes columns (and
// map-key existence). Zone maps are nearly useless for `url == ...` over
// unsorted high-cardinality strings — every group's [Min, Max] spans the
// whole domain — which is exactly the crawl workload the paper targets.
// A per-group Bloom filter answers the one question zone maps cannot: "is
// this exact byte string possibly present?" A negative answer is a proof
// (Bloom filters have no false negatives), so it slots into the same
// conservative Prune/MatchAll machinery as Min/Max: bloom-negative =>
// NoMatch, bloom-positive => MayMatch.
//
// The layout is cache-line blocked (Putze et al., "Cache-, Hash- and
// Space-Efficient Bloom Filters"): a key selects one 512-bit block, then
// sets bloomK bits inside it by double hashing — all probes touch one
// cache line. Hashes are FNV-derived: h1 is 64-bit FNV-1a over the raw
// bytes; h2 is a mix of h1 forced odd, and probe i uses h1 + i*h2
// (Kirsch & Mitzenmacher double hashing).
//
// Sizing targets ~1% false positives: bloomBitsPerKey bits per distinct
// key, rounded up to a power-of-two block count so block selection is a
// mask, capped per group (the cap is the storage side's concern; a capped
// filter is merely weaker, never unsound).

const (
	// bloomBlockWords is the 64-bit words per block: 8 words = 64 bytes =
	// 512 bits, one cache line.
	bloomBlockWords = 8
	bloomBlockBits  = bloomBlockWords * 64

	// bloomK is the probes per key. With bloomBitsPerKey bits per distinct
	// key the fill fraction lands near 1-e^(-K*keys/bits) ~ 0.44 and the
	// false-positive probability near fill^K ~ 0.3-1% (block skew costs a
	// little over the unblocked ideal).
	bloomK          = 7
	bloomBitsPerKey = 12

	// bloomMaxFill is the saturation bound: a filter more than 3/4 full
	// answers "maybe" so often (fill^K ~ 13%) that carrying it is close to
	// pointless, and Merge keeps ORing group filters into the whole-file
	// aggregate only while the result stays useful. Beyond the bound the
	// filter drops to nil ("no statistic"), which pruning already treats
	// as MayMatch.
	bloomMaxFillNum = 3
	bloomMaxFillDen = 4
)

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// BloomHash returns the filter key for a raw byte string — the hash the
// writer inserts and MayContain probes. Exposed so the storage layer can
// deduplicate observed values as hashes before sizing a filter.
func BloomHash(b []byte) uint64 { return bloomHashBytes(b) }

// BloomHashString is BloomHash for a string spelling of the bytes.
func BloomHashString(s string) uint64 { return bloomHashString(s) }

// bloomHashBytes is FNV-1a over b.
func bloomHashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// bloomHashString is bloomHashBytes without the []byte conversion, so a
// string value and its byte-slice spelling hash identically.
func bloomHashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// bloomFinalize avalanches an FNV hash (Murmur3 fmix64). FNV-1a mixes its
// low bits well but leaves the high bits of short keys skewed, and block
// selection reads high bits — without the finalizer, similar short keys
// pile into a few blocks and the false-positive rate triples.
func bloomFinalize(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Bloom is a blocked Bloom filter over the byte strings of one record
// group (column values for string/bytes columns, map keys for map
// columns). The zero value is unusable; filters are built by the storage
// layer (internal/colfile) or decoded from a stats section. A nil *Bloom
// means "no filter": every query answers MayContain = true.
type Bloom struct {
	k     uint8
	words []uint64 // power-of-two number of bloomBlockWords blocks
}

// NewBloomFromWords reconstructs a decoded filter. It returns nil (no
// filter) unless the geometry is valid: k in [1, 64], a power-of-two
// positive block count.
func NewBloomFromWords(k int, words []uint64) *Bloom {
	nblocks := len(words) / bloomBlockWords
	if k < 1 || k > 64 || nblocks == 0 || len(words)%bloomBlockWords != 0 ||
		nblocks&(nblocks-1) != 0 {
		return nil
	}
	return &Bloom{k: uint8(k), words: words}
}

// NewBloomSized returns an empty filter sized for n distinct keys, capped
// at maxBytes (both rounded to the power-of-two block geometry). nil when
// n is zero or the cap cannot hold even one block.
func NewBloomSized(n int, maxBytes int) *Bloom {
	if n <= 0 || maxBytes < bloomBlockWords*8 {
		return nil
	}
	blocks := 1
	for blocks*bloomBlockBits < n*bloomBitsPerKey && blocks*2*bloomBlockWords*8 <= maxBytes {
		blocks *= 2
	}
	return &Bloom{k: bloomK, words: make([]uint64, blocks*bloomBlockWords)}
}

// K returns the number of probes per key.
func (b *Bloom) K() int { return int(b.k) }

// Words exposes the filter's bit array for encoding. Callers must not
// mutate it.
func (b *Bloom) Words() []uint64 { return b.words }

// probe derives the key's block offset, first bit index, and odd
// double-hashing stride from its finalized hash: block from the high bits,
// probe sequence from the low bits, stride from the middle.
func (b *Bloom) probe(h uint64) (base int, g, stride uint64) {
	m := bloomFinalize(h)
	nblocks := uint64(len(b.words) / bloomBlockWords)
	base = int((m>>40)&(nblocks-1)) * bloomBlockWords
	return base, m, (m >> 17) | 1
}

// AddHash sets the key's bits (h is the key's BloomHash value).
func (b *Bloom) AddHash(h uint64) {
	base, g, stride := b.probe(h)
	for i := 0; i < int(b.k); i++ {
		bit := g % bloomBlockBits
		b.words[base+int(bit>>6)] |= 1 << (bit & 63)
		g += stride
	}
}

// mayContainHash reports whether the key's bits are all set. False is a
// proof of absence; true is not a promise.
func (b *Bloom) mayContainHash(h uint64) bool {
	base, g, stride := b.probe(h)
	for i := 0; i < int(b.k); i++ {
		bit := g % bloomBlockBits
		if b.words[base+int(bit>>6)]&(1<<(bit&63)) == 0 {
			return false
		}
		g += stride
	}
	return true
}

// MayContain reports whether the raw byte string may be present. A nil
// filter cannot refute anything.
func (b *Bloom) MayContain(key []byte) bool {
	if b == nil {
		return true
	}
	return b.mayContainHash(bloomHashBytes(key))
}

// MayContainString is MayContain for a string spelling of the bytes.
func (b *Bloom) MayContainString(key string) bool {
	if b == nil {
		return true
	}
	return b.mayContainHash(bloomHashString(key))
}

// MayContainValue applies the filter to a predicate literal: string and
// []byte literals probe their raw bytes (the same spelling the writer
// inserted); any other type cannot be refuted.
func (b *Bloom) MayContainValue(v any) bool {
	switch x := v.(type) {
	case string:
		return b.MayContainString(x)
	case []byte:
		return b.MayContain(x)
	}
	return true
}

// FillFraction returns the fraction of the filter's bits that are set, in
// [0, 1]. The expected false-positive probability of a probe is roughly
// fill^K, which is what confidence-weighted selectivity estimation reads:
// a filter near the saturation bound answers "maybe" so often that a
// positive probe carries little information. Zero for a nil filter.
func (b *Bloom) FillFraction() float64 {
	if b == nil || len(b.words) == 0 {
		return 0
	}
	return float64(b.setBits()) / float64(len(b.words)*64)
}

// setBits counts the filter's one bits.
func (b *Bloom) setBits() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Saturated reports whether the filter is past the useful fill bound.
func (b *Bloom) Saturated() bool {
	return b.setBits()*bloomMaxFillDen > len(b.words)*64*bloomMaxFillNum
}

// Clone returns an independent copy (nil for nil).
func (b *Bloom) Clone() *Bloom {
	if b == nil {
		return nil
	}
	return &Bloom{k: b.k, words: append([]uint64(nil), b.words...)}
}

// mergeBlooms ORs two filters into a fresh one, the union analogue
// ColStats.Merge needs: the result may-contain everything either input
// may-contain. It degrades to nil — "no statistic", sound by
// construction — when either input is missing, the geometries differ, or
// the union saturates past the useful fill bound.
func mergeBlooms(a, b *Bloom) *Bloom {
	if a == nil || b == nil || a.k != b.k || len(a.words) != len(b.words) {
		return nil
	}
	m := a.Clone()
	for i, w := range b.words {
		m.words[i] |= w
	}
	if m.Saturated() {
		return nil
	}
	return m
}
