package scan

import (
	"fmt"
	"testing"
)

// TestBloomNoFalseNegatives: every inserted key must probe positive — the
// property all pruning soundness rests on.
func TestBloomNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 7, 100, 5000} {
		b := NewBloomSized(n, 1<<20)
		if b == nil {
			t.Fatalf("n=%d: no filter", n)
		}
		for i := 0; i < n; i++ {
			b.AddHash(BloomHashString(fmt.Sprintf("key-%d", i)))
		}
		for i := 0; i < n; i++ {
			if !b.MayContainString(fmt.Sprintf("key-%d", i)) {
				t.Fatalf("n=%d: inserted key-%d probes negative", n, i)
			}
		}
		// String and byte-slice spellings must hash identically: a []byte
		// literal probes the value a string column inserted.
		if !b.MayContain([]byte("key-0")) {
			t.Error("bytes spelling of an inserted string probes negative")
		}
	}
}

// TestBloomFalsePositiveRate: at the sized geometry the FPP must land near
// the ~1% target (generously bounded; the assertion guards sizing
// regressions, not the exact constant).
func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 10000
	b := NewBloomSized(n, 1<<20)
	for i := 0; i < n; i++ {
		b.AddHash(BloomHashString(fmt.Sprintf("in-%d", i)))
	}
	if b.Saturated() {
		t.Fatal("sized filter reports saturation")
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.MayContainString(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Errorf("false-positive rate %.3f exceeds 3%% (target ~1%%)", rate)
	}
}

// TestBloomSizeCap: the filter never exceeds its byte cap, and a capped
// filter stays sound (no false negatives) even when overfull.
func TestBloomSizeCap(t *testing.T) {
	const cap = 512 // bytes: 8 blocks
	b := NewBloomSized(100000, cap)
	if got := len(b.Words()) * 8; got > cap {
		t.Fatalf("filter is %d bytes, cap %d", got, cap)
	}
	for i := 0; i < 1000; i++ {
		b.AddHash(BloomHashString(fmt.Sprintf("k%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContainString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("capped filter lost key k%d", i)
		}
	}
}

// TestBloomMergeUnion: the OR of two filters may-contains everything
// either input may-contains; mismatched geometry or a missing side
// degrades to nil.
func TestBloomMergeUnion(t *testing.T) {
	a := NewBloomSized(100, 1<<16)
	b := NewBloomSized(100, 1<<16)
	for i := 0; i < 100; i++ {
		a.AddHash(BloomHashString(fmt.Sprintf("a%d", i)))
		b.AddHash(BloomHashString(fmt.Sprintf("b%d", i)))
	}
	m := mergeBlooms(a, b)
	if m == nil {
		t.Fatal("compatible merge returned nil")
	}
	for i := 0; i < 100; i++ {
		if !m.MayContainString(fmt.Sprintf("a%d", i)) || !m.MayContainString(fmt.Sprintf("b%d", i)) {
			t.Fatalf("merged filter lost an input key at %d", i)
		}
	}
	// The inputs must be untouched (Merge runs on shared stats entries).
	if a.MayContainString("b0") && a.MayContainString("b1") && a.MayContainString("b2") &&
		a.MayContainString("b3") && a.MayContainString("b4") {
		t.Error("merge appears to have mutated its first input")
	}
	if mergeBlooms(a, nil) != nil || mergeBlooms(nil, b) != nil {
		t.Error("merge with a missing side must degrade to nil")
	}
	small := NewBloomSized(1, 64)
	if mergeBlooms(a, small) != nil {
		t.Error("geometry-mismatched merge must degrade to nil")
	}
}

// TestBloomMergeSaturation: ORing filters past the fill bound drops the
// result — the whole-file aggregate degrades to "no statistic" rather than
// carrying a filter that answers "maybe" to everything.
func TestBloomMergeSaturation(t *testing.T) {
	mk := func(tag string) *Bloom {
		b := NewBloomSized(60, 64) // one block, deliberately undersized
		for i := 0; i < 60; i++ {
			b.AddHash(BloomHashString(fmt.Sprintf("%s-%d", tag, i)))
		}
		return b
	}
	m := mk("x")
	sawNil := false
	for round := 0; round < 20 && !sawNil; round++ {
		m = mergeBlooms(m, mk(fmt.Sprintf("t%d", round)))
		sawNil = m == nil
	}
	if !sawNil {
		t.Error("repeated merges never saturated to nil")
	}
}

// TestColStatsMergeBloom: Merge's bloom handling across the
// values/no-values cases, including that adopting a side clones rather
// than aliases.
func TestColStatsMergeBloom(t *testing.T) {
	withBloom := func(keys ...string) *ColStats {
		b := NewBloomSized(len(keys), 1<<16)
		for _, k := range keys {
			b.AddHash(BloomHashString(k))
		}
		return &ColStats{Rows: int64(len(keys)), HasMinMax: true, Min: keys[0], Max: keys[0], Bloom: b}
	}

	// Both sides carry values: filters OR.
	s := withBloom("p", "q")
	s.Merge(withBloom("r", "s"))
	for _, k := range []string{"p", "q", "r", "s"} {
		if !s.Bloom.MayContainString(k) {
			t.Fatalf("merged stats lost %q", k)
		}
	}

	// One side all-null: the other side's filter survives; adopting clones.
	nullSide := &ColStats{Rows: 3, Nulls: 3}
	src := withBloom("z")
	nullSide.Merge(src)
	if nullSide.Bloom == nil || !nullSide.Bloom.MayContainString("z") {
		t.Fatal("all-null side did not adopt the value side's filter")
	}
	if &nullSide.Bloom.words[0] == &src.Bloom.words[0] {
		t.Error("adopted filter aliases the source's bit array")
	}
	s2 := withBloom("w")
	s2.Merge(&ColStats{Rows: 2, Nulls: 2})
	if s2.Bloom == nil || !s2.Bloom.MayContainString("w") {
		t.Error("merging in an all-null side dropped the filter")
	}

	// A side without a filter poisons the union (can no longer refute).
	s3 := withBloom("a")
	s3.Merge(&ColStats{Rows: 1, HasMinMax: true, Min: "m", Max: "m"})
	if s3.Bloom != nil {
		t.Error("merge with a filterless side must drop the filter")
	}
}

// TestColStatsHasKeyBloom: HasKey consults the filter before the sorted
// list — and because the filter covers keys the capped list dropped, it
// still answers membership for them.
func TestColStatsHasKeyBloom(t *testing.T) {
	b := NewBloomSized(3, 1<<12)
	for _, k := range []string{"kept", "dropped", "alsodropped"} {
		b.AddHash(BloomHashString(k))
	}
	st := &ColStats{Rows: 1, HasKeys: true, Keys: []string{"kept"}, KeysCapped: true, Bloom: b}
	if !st.HasKey("kept") {
		t.Error("retained key refuted")
	}
	if st.HasKey("absent-key-the-filter-never-saw") {
		t.Error("bloom-negative key not refuted")
	}
}

// TestPruneBloomEquality: equality over a high-cardinality string column
// where zone maps are useless ([Min, Max] spans the literal) must prune on
// a bloom-negative, must not prune on a member, and must leave range and
// prefix predicates untouched.
func TestPruneBloomEquality(t *testing.T) {
	b := NewBloomSized(2, 1<<12)
	b.AddHash(BloomHashString("banana"))
	b.AddHash(BloomHashString("cherry"))
	st := &ColStats{Rows: 2, HasMinMax: true, Min: "banana", Max: "cherry", Bloom: b}
	stats := func(string) *ColStats { return st }

	// "candy" lies inside [banana, cherry], so only the filter can refute.
	if got := Eq("c", "candy").Prune(stats); got != NoMatch {
		t.Errorf("bloom-negative equality: %v, want no-match", got)
	}
	if got := Eq("c", "banana").Prune(stats); got != MayMatch {
		t.Errorf("bloom-positive equality: %v, want may-match", got)
	}
	// Range and prefix shapes never consult the filter: in-range literals
	// stay may-match whether or not the filter would refute them.
	if got := Between("c", "bx", "by").Prune(stats); got != MayMatch {
		t.Errorf("range inside bounds: %v, want may-match", got)
	}
	if got := HasPrefix("c", "che").Prune(stats); got != MayMatch {
		t.Errorf("prefix inside bounds: %v, want may-match", got)
	}
	// Ne must not be refuted by a value filter.
	if got := Ne("c", "candy").Prune(stats); got != MayMatch {
		t.Errorf("inequality: %v, want may-match", got)
	}

	// StripBloom restores zone-map-only behavior.
	if got := Eq("c", "candy").Prune(StripBloom(stats)); got != MayMatch {
		t.Errorf("stripped bloom-negative equality: %v, want may-match", got)
	}
}

// TestPruneBloomKeyExists: a map column's key filter refutes exists() even
// when the key universe is capped — the case the sorted list cannot
// decide.
func TestPruneBloomKeyExists(t *testing.T) {
	b := NewBloomSized(2, 1<<12)
	b.AddHash(BloomHashString("k0"))
	b.AddHash(BloomHashString("overflow"))
	st := &ColStats{Rows: 2, HasKeys: true, Keys: []string{"k0"}, KeysCapped: true, Bloom: b}
	stats := func(string) *ColStats { return st }

	if got := KeyExists("m", "nosuchkey").Prune(stats); got != NoMatch {
		t.Errorf("bloom-negative key with capped universe: %v, want no-match", got)
	}
	if got := KeyExists("m", "overflow").Prune(stats); got != MayMatch {
		t.Errorf("bloomed-but-dropped key: %v, want may-match", got)
	}
	// Without the filter a capped universe proves nothing.
	if got := KeyExists("m", "nosuchkey").Prune(StripBloom(stats)); got != MayMatch {
		t.Errorf("stripped capped universe: %v, want may-match", got)
	}
}

// TestEstimateBloomNegative: a bloom-refuted equality estimates to exactly
// zero, ahead of the 1/Distinct guess.
func TestEstimateBloomNegative(t *testing.T) {
	b := NewBloomSized(1, 1<<12)
	b.AddHash(BloomHashString("present"))
	st := &ColStats{Rows: 100, Distinct: 50, HasMinMax: true, Min: "a", Max: "z", Bloom: b}
	stats := func(string) *ColStats { return st }
	if got := EstimateFraction(Eq("c", "absent"), stats); got != 0 {
		t.Errorf("bloom-negative equality estimates %v, want 0", got)
	}
	// A positive probe keeps the 1/Distinct model, discounted by the
	// filter's false-positive confidence 1/(1+fill^K) — a nearly-empty
	// filter (one key in 4096 bits) keeps almost the full estimate.
	got := EstimateFraction(Eq("c", "present"), stats)
	if got <= 0 || got > 1.0/50 {
		t.Errorf("bloom-positive equality estimates %v, want in (0, 1/Distinct]", got)
	}
	if got < 0.9/50 {
		t.Errorf("bloom-positive equality estimates %v; a near-empty filter should keep ~1/Distinct", got)
	}
}

// TestPlannerBloomSwitchAndAttribution: SetBloom(false) restores
// zone-map-only verdicts, and PruneGroup attributes bloom-decisive proofs.
func TestPlannerBloomSwitchAndAttribution(t *testing.T) {
	b := NewBloomSized(1, 1<<12)
	b.AddHash(BloomHashString("present"))
	st := &ColStats{Rows: 10, HasMinMax: true, Min: "a", Max: "z", Bloom: b}
	group := func(string, int64) (*ColStats, int64) { return st, 10 }

	pl := NewPlanner(Eq("c", "absent"))
	tri, end, byBloom := pl.PruneGroup(0, 10, group)
	if tri != NoMatch || end != 10 || !byBloom {
		t.Errorf("bloom-decisive group prune: tri=%v end=%d byBloom=%v", tri, end, byBloom)
	}
	pl.SetBloom(false)
	if tri, _, byBloom = pl.PruneGroup(0, 10, group); tri != MayMatch || byBloom {
		t.Errorf("disabled planner still pruned: tri=%v byBloom=%v", tri, byBloom)
	}
	if pl.PruneFile(func(string) *ColStats { return st }) != MayMatch {
		t.Error("disabled planner pruned at the file tier")
	}

	// A zone-map-decidable proof is not attributed to the filter.
	zm := NewPlanner(Eq("c", "zz"))
	if _, _, byBloom := zm.PruneGroup(0, 10, group); byBloom {
		t.Error("zone-map proof attributed to the bloom filter")
	}
}
