package scan

import (
	"fmt"

	"colmr/internal/mapred"
)

// PredicateProp is the job property carrying the serialized predicate,
// interpreted by CIF (internal/core) the way ColumnsProp carries the
// projection.
const PredicateProp = "scan.predicate"

// SetPredicate pushes a selection predicate into CIF for a job — the
// selection analogue of core.SetColumns:
//
//	scan.SetPredicate(conf, scan.And(
//		scan.HasPrefix("url", "http://www.ibm.com"),
//		scan.Gt("fetchTime", int64(t0)),
//	))
//
// The record reader evaluates the predicate on the filter columns first,
// skips the remaining cursors past non-qualifying records, and uses
// zone-map statistics to jump whole record groups.
func SetPredicate(conf *mapred.JobConf, p Predicate) {
	if p == nil {
		conf.Set(PredicateProp, "")
		return
	}
	conf.Set(PredicateProp, p.String())
}

// FromConf reads the job's predicate, or nil when none is set.
func FromConf(conf *mapred.JobConf) (Predicate, error) {
	expr := conf.Get(PredicateProp)
	if expr == "" {
		return nil, nil
	}
	p, err := Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("scan: invalid %s: %w", PredicateProp, err)
	}
	return p, nil
}
