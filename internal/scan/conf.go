package scan

import "fmt"

// Spec is the typed scan specification — the format-independent query
// contract (projection + selection + materialization + task sizing) that
// travels with a job as one first-class value instead of a side channel of
// conf strings. mapred.JobConf carries a *Spec; the CIF planner and readers
// consume it directly, and the legacy Set* free functions are thin
// compatibility wrappers that populate it. The string props (ColumnsProp et
// al. in internal/core, PredicateProp/ElideProp here) remain only as the
// serialization format for string-typed inputs such as `colscan -where`:
// a prop still present fills its field only when the typed spec never set
// it (each wrapper deletes its own prop when writing the typed field).
type Spec struct {
	// Columns is the projection: the columns materialized into the records
	// handed to the map function. Empty means every column.
	Columns []string
	// Predicate is the pushdown selection; nil scans unfiltered.
	Predicate Predicate
	// Lazy selects lazy record construction (paper Section 5).
	Lazy bool
	// NoElide disables scheduler-tier split elision (and the reader's file
	// tier). The zero value — elision on — is the default, as with
	// SetElision; the switch exists so output equivalence is testable and
	// regressions bisectable.
	NoElide bool
	// NoBloom disables Bloom-filter consultation at every pruning tier
	// (scheduler, file, group, and the DCSL key prober), restoring
	// zone-map-only pruning. The zero value — blooms on — is the default.
	// Like NoElide it is a read-side switch: filters already written into
	// stats footers are simply not consulted, so outputs must be identical
	// either way (the property tests' bloom dimension).
	NoBloom bool
	// NoVec disables vectorized batch execution, forcing the record-at-a-
	// time scalar path. The zero value — vectorize on — is the default.
	// Like NoElide/NoBloom it is a read-side switch with identical outputs
	// either way (the property tests' vectorize dimension); it exists as
	// the escape hatch and the A/B lever for the vectorization benchmarks.
	NoVec bool
	// DirsPerSplit assigns this many split-directories to one map task,
	// overriding the input format's own setting when non-zero
	// (core.AutoDirsPerSplit sizes tasks from estimated selectivity).
	DirsPerSplit int
	// Agg, when set, turns the scan into an aggregation: the functions are
	// answered inside the scan — from zone stats or decoded vectors — and
	// no records reach the map function. The job's Result carries the
	// aggregate rows instead.
	Agg *Aggregate
}

// Elide reports whether scheduler-tier split elision is enabled.
func (s *Spec) Elide() bool { return !s.NoElide }

// Bloom reports whether Bloom-filter consultation is enabled.
func (s *Spec) Bloom() bool { return !s.NoBloom }

// Vectorize reports whether vectorized batch execution is enabled.
func (s *Spec) Vectorize() bool { return !s.NoVec }

// Clone returns a copy sharing the (immutable) predicate and a fresh
// projection slice.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	out := *s
	out.Columns = append([]string(nil), s.Columns...)
	out.Agg = s.Agg.Clone()
	return &out
}

// Equal reports whether two specs describe the same scan. Predicates are
// compared by their expression serialization, the same form the prop
// round-trips through.
func (s *Spec) Equal(o *Spec) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	if (s.Predicate == nil) != (o.Predicate == nil) {
		return false
	}
	if s.Predicate != nil && s.Predicate.String() != o.Predicate.String() {
		return false
	}
	if !s.Agg.Equal(o.Agg) {
		return false
	}
	return s.Lazy == o.Lazy && s.NoElide == o.NoElide && s.NoBloom == o.NoBloom &&
		s.NoVec == o.NoVec && s.DirsPerSplit == o.DirsPerSplit
}

// Conf is the slice of mapred.JobConf this package needs: free-form string
// properties plus the typed scan spec. Depending on the interface rather
// than the struct keeps scan import-free below mapred, which lets the
// engine consume scan's planning vocabulary (PruneReport, Spec) without a
// cycle.
type Conf interface {
	Get(key string) string
	Set(key, value string)
	// Del removes a property so cleared settings leave no lingering keys
	// behind (empty-string values confuse conf diffing).
	Del(key string)
	// ScanSpec returns the conf's mutable typed spec, allocating it on
	// first use. Write-side only: concurrent readers must use the conf's
	// own accessor for the possibly-nil spec.
	ScanSpec() *Spec
}

// PredicateProp is the job property carrying the serialized predicate — the
// legacy side channel, interpreted by CIF (internal/core) only when the
// typed Spec carries no predicate of its own.
const PredicateProp = "scan.predicate"

// ElideProp is the job property controlling scheduler-tier split elision
// ("false" disables it; anything else, including unset, enables it). Like
// PredicateProp it is consulted only when the typed Spec leaves elision at
// its default.
const ElideProp = "scan.elide"

// SetPredicate pushes a selection predicate into CIF for a job — the
// selection analogue of core.SetColumns:
//
//	scan.SetPredicate(conf, scan.And(
//		scan.HasPrefix("url", "http://www.ibm.com"),
//		scan.Gt("fetchTime", int64(t0)),
//	))
//
// The record reader evaluates the predicate on the filter columns first,
// skips the remaining cursors past non-qualifying records, and uses
// zone-map statistics to jump whole record groups; split generation uses
// whole-file statistics to drop split-directories before tasks exist.
//
// SetPredicate is the compatibility wrapper over the typed spec: it
// populates Spec.Predicate and clears any lingering serialized prop. New
// code should prefer the builder (core.ScanDataset).
func SetPredicate(conf Conf, p Predicate) {
	conf.ScanSpec().Predicate = p
	conf.Del(PredicateProp)
}

// FromConf reads a conf's serialized predicate prop, or nil when none is
// set — the legacy fill-in consulted only when the typed Spec carries no
// predicate.
func FromConf(conf Conf) (Predicate, error) {
	expr := conf.Get(PredicateProp)
	if expr == "" {
		return nil, nil
	}
	p, err := Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("scan: invalid %s: %w", PredicateProp, err)
	}
	return p, nil
}

// SetElision enables or disables scheduler-tier split elision for a job —
// the compatibility wrapper over Spec.NoElide. Enabling (the default state)
// clears the legacy prop rather than writing a placeholder value.
func SetElision(conf Conf, on bool) {
	conf.ScanSpec().NoElide = !on
	conf.Del(ElideProp)
}

// ElisionFromConf reports whether a specless conf enables split elision
// (the default).
func ElisionFromConf(conf Conf) bool {
	return conf.Get(ElideProp) != "false"
}

// BloomProp is the job property controlling Bloom-filter consultation
// ("false" disables it; anything else, including unset, enables it).
// Like ElideProp it is consulted only when the typed Spec leaves the
// setting at its default.
const BloomProp = "scan.bloom"

// SetBloom enables or disables Bloom-filter pruning for a job — the
// compatibility wrapper over Spec.NoBloom. Enabling (the default state)
// clears the legacy prop rather than writing a placeholder value.
func SetBloom(conf Conf, on bool) {
	conf.ScanSpec().NoBloom = !on
	conf.Del(BloomProp)
}

// BloomFromConf reports whether a specless conf enables Bloom pruning
// (the default).
func BloomFromConf(conf Conf) bool {
	return conf.Get(BloomProp) != "false"
}

// VectorizeProp is the job property controlling vectorized batch execution
// ("false" disables it; anything else, including unset, enables it). Like
// ElideProp it is consulted only when the typed Spec leaves the setting at
// its default.
const VectorizeProp = "scan.vectorize"

// SetVectorize enables or disables vectorized batch execution for a job —
// the compatibility wrapper over Spec.NoVec. Enabling (the default state)
// clears the legacy prop rather than writing a placeholder value.
func SetVectorize(conf Conf, on bool) {
	conf.ScanSpec().NoVec = !on
	conf.Del(VectorizeProp)
}

// VectorizeFromConf reports whether a specless conf enables vectorized
// execution (the default).
func VectorizeFromConf(conf Conf) bool {
	return conf.Get(VectorizeProp) != "false"
}

// AggProp is the job property carrying the serialized aggregate spec (the
// ParseAggregate form) — the legacy side channel for string-typed inputs
// such as `colscan -agg`, consulted only when the typed Spec carries no
// aggregation of its own.
const AggProp = "scan.agg"

// SetAggregate pushes an aggregation into the scan for a job — the
// compatibility wrapper over Spec.Agg. New code should prefer the builder
// (core.ScanDataset(...).Aggregate(...)).
func SetAggregate(conf Conf, a *Aggregate) {
	conf.ScanSpec().Agg = a
	conf.Del(AggProp)
}

// AggFromConf reads a conf's serialized aggregate prop, or nil when none
// is set.
func AggFromConf(conf Conf) (*Aggregate, error) {
	src := conf.Get(AggProp)
	if src == "" {
		return nil, nil
	}
	a, err := ParseAggregate(src)
	if err != nil {
		return nil, fmt.Errorf("scan: invalid %s: %w", AggProp, err)
	}
	return a, nil
}
