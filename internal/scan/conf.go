package scan

import "fmt"

// Conf is the slice of mapred.JobConf this package needs: free-form string
// properties. Depending on the interface rather than the struct keeps scan
// import-free below mapred, which lets the engine consume scan's planning
// vocabulary (PruneReport) without a cycle.
type Conf interface {
	Get(key string) string
	Set(key, value string)
}

// PredicateProp is the job property carrying the serialized predicate,
// interpreted by CIF (internal/core) the way ColumnsProp carries the
// projection.
const PredicateProp = "scan.predicate"

// ElideProp is the job property controlling scheduler-tier split elision
// ("false" disables it; anything else, including unset, enables it).
// Elision only changes which split-directories are scheduled, never which
// records qualify, so it defaults on; the switch exists so output
// equivalence is testable and regressions bisectable.
const ElideProp = "scan.elide"

// SetPredicate pushes a selection predicate into CIF for a job — the
// selection analogue of core.SetColumns:
//
//	scan.SetPredicate(conf, scan.And(
//		scan.HasPrefix("url", "http://www.ibm.com"),
//		scan.Gt("fetchTime", int64(t0)),
//	))
//
// The record reader evaluates the predicate on the filter columns first,
// skips the remaining cursors past non-qualifying records, and uses
// zone-map statistics to jump whole record groups; split generation uses
// whole-file statistics to drop split-directories before tasks exist.
func SetPredicate(conf Conf, p Predicate) {
	if p == nil {
		conf.Set(PredicateProp, "")
		return
	}
	conf.Set(PredicateProp, p.String())
}

// FromConf reads the job's predicate, or nil when none is set.
func FromConf(conf Conf) (Predicate, error) {
	expr := conf.Get(PredicateProp)
	if expr == "" {
		return nil, nil
	}
	p, err := Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("scan: invalid %s: %w", PredicateProp, err)
	}
	return p, nil
}

// SetElision enables or disables scheduler-tier split elision for a job.
func SetElision(conf Conf, on bool) {
	if on {
		conf.Set(ElideProp, "")
	} else {
		conf.Set(ElideProp, "false")
	}
}

// ElisionFromConf reports whether split elision is enabled (the default).
func ElisionFromConf(conf Conf) bool {
	return conf.Get(ElideProp) != "false"
}
