// Package scan implements the selection-aware scan subsystem: typed
// predicates that CIF pushes below record materialization, the per-group
// statistics vocabulary (zone maps, key universes, Bloom filters) that
// lets a predicate prove a whole record group irrelevant without
// decompressing or deserializing it, and the hierarchical Planner that
// applies those proofs at every tier of the scheduler→file→group→value
// pipeline.
//
// The paper's CIF format (Sections 4-5) pushes *projection* into the
// storage layer; this package adds *selection*. A Predicate is a tree of
// comparisons, ranges, string-prefix tests, null checks, map-key-exists
// tests, and boolean connectives. It supports three progressively cheaper
// evaluation modes:
//
//	Eval      exact, per record, over materialized column values;
//	VecEval   exact, per batch: the same verdicts as Eval computed over
//	          column vectors (Vector) and selection bitmaps (Selection),
//	          with AND/OR as narrowing/union bitmap arithmetic so a
//	          column alive only under an empty selection is never
//	          decoded — see docs/VECTORIZED.md;
//	Prune     conservative, per record group, over ColStats — NoMatch
//	          proves the group holds no qualifying record;
//	MatchAll  conservative, per record group — true proves every record
//	          in the group qualifies (the dual Prune needs to invert NOT
//	          soundly).
//
// ColStats carries the statistics one record group (or one whole file,
// after Merge) exposes to Prune: Min/Max bounds, null and distinct
// counts, the map-key universe, and an optional blocked Bloom filter over
// the group's byte strings (values for string/bytes columns, keys for map
// columns). Zone maps decide range shapes; the filter decides equality on
// unsorted high-cardinality data, where [Min, Max] spans everything and
// proves nothing. A bloom-negative probe is a proof of absence, so it
// slots into Prune beside the bounds; Spec.NoBloom (scan.SetBloom)
// disables consultation for a job without touching written files.
//
// Predicates serialize to a small expression language (String/Parse round
// trip), which is how they travel through mapred.JobConf props and the
// colscan -where flag; the typed Spec on mapred.JobConf.Scan is the
// first-class form (see conf.go).
//
// Aggregate carries the other pushdown (agg.go, docs/AGGREGATION.md): a
// parsed function list (count/count(col)/min/max/sum, optional GROUP BY)
// whose AggState folds rows at whichever site the readers find cheapest —
// whole record groups from ColStats alone (StatsAnswerable/FoldStats),
// batch survivors from a Selection and its Vectors (FoldBatch), or single
// records (FoldRecord) — with Merge combining per-task partial states.
// All sites and any merge order produce identical rows (agg_test.go). For
// equality predicates on dictionary-encoded string columns, IDVector
// (idvec.go) lets VecEval compare window-local dictionary ids instead of
// decoded strings.
//
// Roles in the scheduler→file→group→value pipeline: Planner is the single
// pruning implementation every consumer drives — the split scheduler's
// elision tier (core.InputFormat.PlannedSplits), the reader's file tier,
// and both readers' group tiers — so a proof is identical wherever it
// fires. EstimateFraction turns the same statistics into selectivity
// estimates for task sizing and batch costing; estimates never affect
// correctness, only granularity.
//
// Invariants the property tests defend:
//
//   - Pushdown equivalence (property_test.go): a pushdown scan returns
//     exactly the records a full scan plus an in-memory filter returns,
//     over random schemas, predicates, layouts, projections, and both
//     execution modes (the vectorize dimension is randomized) — Prune
//     and MatchAll are proofs, never heuristics.
//   - Vectorized equivalence (vector_test.go): VecEval's selection
//     bitmaps equal per-record Eval verdicts — including which inputs
//     error — over random vectors with nulls, type-mismatched literals,
//     and empty selections.
//   - Elision equivalence (elision_property_test.go): scans with
//     scheduler-tier elision on and off, and with Bloom consultation on
//     and off, return identical records; "records pruned at any tier +
//     records filtered + records returned == dataset size" holds in every
//     mode; BloomPruned stays within GroupsPruned and is zero when
//     consultation is off.
//   - Serialization round trip: every random predicate travels through
//     String/Parse unchanged (the pushdown property test routes
//     predicates through the conf prop).
package scan
