package scan_test

// Property test for scheduler-tier split elision: for random schemas,
// datasets, predicates, and split counts, a scan with elision enabled must
// return exactly the records a scan with elision disabled returns, and the
// job-level accounting invariant — records pruned at any tier + records
// filtered + records returned == dataset size — must hold in both modes.
//
// Every random schema gets an extra clustered long column "t" (monotone in
// the load order, like a log timestamp), so predicates touching it give the
// scheduler tier real elision opportunities; predicates over the other
// columns exercise the no-elision-possible regime.
//
// Bloom consultation is a third random dimension: each round draws a bloom
// setting, both elision arms run under it, and a third arm re-runs with the
// setting flipped — all three must return identical records, Bloom proofs
// being proofs. BloomPruned must stay zero when consultation is off and
// within GroupsPruned when on.

import (
	"fmt"
	"math/rand"
	"testing"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// elisionScan drains every split of a planned scan, returning the
// projected rows, and the stats aggregate with the scheduler report folded
// in (as mapred.Run does).
func elisionScan(t *testing.T, fs *hdfs.FileSystem, conf *mapred.JobConf, proj []string) ([][]any, sim.TaskStats, scan.PruneReport) {
	t.Helper()
	in := &core.InputFormat{}
	splits, report, err := in.PlannedSplits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	var total sim.TaskStats
	total.SplitsPruned = int64(report.SplitsPruned)
	total.RecordsPruned = report.RecordsPruned
	var rows [][]any
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rec := v.(serde.Record)
			row := make([]any, len(proj))
			for i, col := range proj {
				if row[i], err = rec.Get(col); err != nil {
					t.Fatal(err)
				}
			}
			rows = append(rows, row)
		}
		if err := rr.Close(); err != nil {
			t.Fatal(err)
		}
		total.Add(st)
	}
	return rows, total, report
}

func TestElisionEquivalenceProperty(t *testing.T) {
	rounds := 25
	records := 240
	if testing.Short() {
		rounds = 8
	}
	rng := rand.New(rand.NewSource(20110711))
	var elisions, bloomPrunes int64
	for round := 0; round < rounds; round++ {
		base := randSchema(rng)
		fields := append(append([]serde.Field{}, base.Fields...), serde.Field{Name: "t", Type: serde.Long()})
		schema := serde.RecordOf("Elide", fields...)
		recs := make([]*serde.GenericRecord, records)
		for i := range recs {
			rec := serde.NewRecord(schema)
			for _, f := range base.Fields {
				if err := rec.Set(f.Name, randValue(rng, f.Type)); err != nil {
					t.Fatal(err)
				}
			}
			// t is clustered: monotone in the load order, spanning the same
			// [0, 1000) domain random long predicates draw literals from.
			if err := rec.Set("t", int64(i)*1000/int64(records)); err != nil {
				t.Fatal(err)
			}
			recs[i] = rec
		}
		pred := randPredicate(rng, schema, 2)

		names := schema.FieldNames()
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		proj := names[:1+rng.Intn(len(names))]
		lazy := rng.Intn(2) == 0
		bloom := rng.Intn(2) == 0
		splitRecords := int64(20 + rng.Intn(100)) // 3..12 split-directories

		for vi, opts := range layoutVariants(schema) {
			opts.SplitRecords = splitRecords
			cfg := sim.SingleNode()
			fs := hdfs.New(cfg, int64(round))
			w, err := core.NewWriter(fs, "/e", schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				if err := w.Append(rec); err != nil {
					t.Fatalf("round %d %s: %v", round, variantName(vi), err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			conf := func(elide, bloom bool) *mapred.JobConf {
				conf := &mapred.JobConf{InputPaths: []string{"/e"}}
				core.SetColumns(conf, proj...)
				core.SetLazy(conf, lazy)
				scan.SetPredicate(conf, pred)
				scan.SetElision(conf, elide)
				scan.SetBloom(conf, bloom)
				return conf
			}
			ctx := fmt.Sprintf("round %d %s: pred %s (bloom %v)", round, variantName(vi), pred, bloom)
			on, onSt, report := elisionScan(t, fs, conf(true, bloom), proj)
			off, offSt, offReport := elisionScan(t, fs, conf(false, bloom), proj)
			alt, altSt, _ := elisionScan(t, fs, conf(true, !bloom), proj)
			elisions += int64(report.SplitsPruned)
			if offReport.SplitsPruned != 0 {
				t.Fatalf("%s: elision disabled but %d splits pruned", ctx, offReport.SplitsPruned)
			}
			if len(on) != len(off) {
				t.Fatalf("%s: elision returned %d records, baseline %d", ctx, len(on), len(off))
			}
			if len(alt) != len(on) {
				t.Fatalf("%s: flipping bloom changed the result: %d records vs %d", ctx, len(alt), len(on))
			}
			for i := range on {
				for j, col := range proj {
					if !serde.ValuesEqual(schema.Field(col), on[i][j], off[i][j]) {
						t.Fatalf("%s: match %d column %s differs: %v vs %v", ctx, i, col, on[i][j], off[i][j])
					}
					if !serde.ValuesEqual(schema.Field(col), on[i][j], alt[i][j]) {
						t.Fatalf("%s: match %d column %s differs across bloom settings: %v vs %v",
							ctx, i, col, on[i][j], alt[i][j])
					}
				}
			}
			for mode, st := range map[string]sim.TaskStats{"elision": onSt, "baseline": offSt, "bloom-flipped": altSt} {
				if st.RecordsPruned+st.RecordsFiltered+int64(len(on)) != int64(records) {
					t.Fatalf("%s: %s: pruned %d + filtered %d + returned %d != total %d",
						ctx, mode, st.RecordsPruned, st.RecordsFiltered, len(on), records)
				}
				if st.BloomPruned > st.GroupsPruned {
					t.Fatalf("%s: %s: BloomPruned %d exceeds GroupsPruned %d",
						ctx, mode, st.BloomPruned, st.GroupsPruned)
				}
			}
			// Arms that ran with consultation off must attribute nothing to
			// the filter, whichever arm that is this round; the bloom-on
			// arms feed the liveness counter.
			armBloom := map[string]bool{"elision": bloom, "baseline": bloom, "bloom-flipped": !bloom}
			for mode, st := range map[string]sim.TaskStats{"elision": onSt, "baseline": offSt, "bloom-flipped": altSt} {
				if armBloom[mode] {
					bloomPrunes += st.BloomPruned
				} else if st.BloomPruned != 0 {
					t.Fatalf("%s: %s: bloom disabled but BloomPruned = %d", ctx, mode, st.BloomPruned)
				}
			}
		}
	}
	// The clustered column must have given the scheduler real work at
	// least somewhere across the random rounds, and the bloom dimension
	// must have produced at least one bloom-decisive group proof.
	if elisions == 0 {
		t.Error("no split was ever elided across all rounds — the clustered column is not driving the scheduler tier")
	}
	if bloomPrunes == 0 && !testing.Short() {
		t.Error("no group was ever bloom-pruned across all rounds — the bloom dimension is not driving the group tier")
	}
}
