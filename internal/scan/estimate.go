package scan

import "math"

// Selectivity estimation for plan costing. The scheduler tier reads each
// split-directory's whole-file aggregate statistics (Rows, Nulls, Min/Max,
// Distinct, key universe) before any task exists; estimating match counts
// from them lets the engine size DirsPerSplit — a few surviving, highly
// selective splits merge into fewer map tasks — and lets the batch
// scheduler cost shared-scan groupings. Estimates are best-effort and only
// influence task granularity, never correctness: the exact value tier still
// decides every record.
//
// The estimator uses the classic System R independence assumptions where
// the statistics cannot narrow a predicate, refined by the same
// conservative Prune/MatchAll duals pruning uses: a group the statistics
// prove empty estimates to 0, one they prove full estimates to the non-null
// fraction.

// Default match fractions where the statistics offer nothing sharper
// (System R, Selinger et al. 1979).
const (
	defaultEqFraction     = 0.1
	defaultRangeFraction  = 1.0 / 3
	defaultKeyFraction    = 0.5
	defaultPrefixFraction = 0.1
)

// EstimateFraction estimates the fraction of rows satisfying p, in [0, 1],
// from zone-map statistics alone. A nil predicate matches everything.
func EstimateFraction(p Predicate, stats StatsFunc) float64 {
	if p == nil {
		return 1
	}
	return clampFraction(estimateFraction(p, stats))
}

// EstimateRows scales EstimateFraction to a row count.
func EstimateRows(p Predicate, stats StatsFunc, rows int64) float64 {
	return EstimateFraction(p, stats) * float64(rows)
}

func clampFraction(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func estimateFraction(p Predicate, stats StatsFunc) float64 {
	// The conservative duals give exact answers at the extremes; checking
	// them first keeps the estimator consistent with pruning (a group the
	// planner elides always estimates to zero). Because Prune consults
	// Bloom filters, a bloom-negative equality estimates to exactly 0 here
	// — before the 1/Distinct uniform-spread guess below ever runs.
	// Callers honoring Spec.NoBloom pass a StripBloom-wrapped source.
	if p.Prune(stats) == NoMatch {
		return 0
	}
	if p.MatchAll(stats) {
		return 1
	}
	switch q := p.(type) {
	case *cmpPred:
		return estimateCmp(q, stats)
	case *rangePred:
		return estimateRange(q, stats)
	case *prefixPred:
		return valueFraction(stats(q.col)) * defaultPrefixFraction
	case *nullPred:
		st := stats(q.col)
		if st == nil || st.Rows == 0 {
			return defaultEqFraction
		}
		f := float64(st.Nulls) / float64(st.Rows)
		if q.negate {
			return 1 - f
		}
		return f
	case *keyPred:
		// Prune already handled complete-universe misses; a present (or
		// unknowable) key defaults to a coin flip over non-null rows.
		return valueFraction(stats(q.col)) * defaultKeyFraction
	case *andPred:
		f := 1.0
		for _, k := range q.kids {
			f *= clampFraction(estimateFraction(k, stats))
		}
		return f
	case *orPred:
		miss := 1.0
		for _, k := range q.kids {
			miss *= 1 - clampFraction(estimateFraction(k, stats))
		}
		return 1 - miss
	case *notPred:
		return 1 - clampFraction(estimateFraction(q.kid, stats))
	}
	return defaultRangeFraction
}

// valueFraction is the non-null fraction of the column's rows (1 without
// statistics: no information, assume values everywhere).
func valueFraction(st *ColStats) float64 {
	if st == nil || st.Rows == 0 {
		return 1
	}
	return float64(st.Rows-st.Nulls) / float64(st.Rows)
}

func estimateCmp(q *cmpPred, stats StatsFunc) float64 {
	st := stats(q.col)
	if st == nil || st.Rows == 0 {
		switch q.op {
		case OpEq:
			return defaultEqFraction
		case OpNe:
			return 1 - defaultEqFraction
		default:
			return defaultRangeFraction
		}
	}
	vals := valueFraction(st)
	switch q.op {
	case OpEq:
		return vals * eqFraction(st, q.lit) * bloomConfidence(st, q.lit)
	case OpNe:
		return vals * (1 - eqFraction(st, q.lit))
	}
	// Inequalities: the histogram's cumulative fraction when one exists
	// (degenerate buckets make <= vs < matter on heavy values), else
	// uniform interpolation across [Min, Max].
	if h := st.Hist; h != nil {
		inclusive := q.op == OpLe || q.op == OpGt // f(<=v); Gt complements it
		if below, ok := h.FractionBelow(q.lit, inclusive); ok {
			if q.op == OpLt || q.op == OpLe {
				return vals * below
			}
			return vals * (1 - below)
		}
	}
	if below, ok := fractionBelow(st, q.lit); ok {
		switch q.op {
		case OpLt, OpLe:
			return vals * below
		default: // OpGt, OpGe
			return vals * (1 - below)
		}
	}
	return vals * defaultRangeFraction
}

// eqFraction estimates the fraction of the column's *non-null* values equal
// to lit. The histogram answers exactly (up to sampling error) when lit sits
// in a degenerate bucket or outside every bucket; otherwise the uniform
// 1/Distinct model applies, capped by the containing bucket's mass (a value
// that is not a heavy hitter cannot exceed its bucket). The divide is
// guarded: Distinct can legitimately be 0 or unset (all-null groups, legacy
// footers, synthetic statistics carrying only a Bloom filter), and 0/0 NaN
// here would poison every cost decision downstream.
func eqFraction(st *ColStats, lit any) float64 {
	if h := st.Hist; h != nil {
		if f, exact := h.EqFraction(lit); exact {
			return f
		}
	}
	base := defaultEqFraction
	if st.Distinct > 0 {
		// With DistinctCapped the count is a lower bound, so 1/Distinct
		// stays an upper bound on the uniform per-value fraction —
		// exactly the conservative direction for merging tasks.
		base = 1 / float64(st.Distinct)
	}
	if h := st.Hist; h != nil {
		if cap, ok := h.EqCap(lit); ok && cap < base {
			base = cap
		}
	}
	return base
}

// bloomConfidence weights a bloom-positive equality estimate by the
// filter's observed false-positive confidence. Prune already turned
// bloom-negative probes into exact zeros before estimation runs, so a
// probed literal reaching here tested positive; under even prior odds that
// the literal is genuinely present, a positive probe confirms presence
// with probability 1/(1+fpp), where fpp ~ fill^K is the filter's expected
// false-positive rate at its recorded (or counted) fill fraction. A crisp
// filter (fpp ~ 0) keeps the full estimate; a filter at the saturation
// bound (fpp ~ 0.13) discounts it toward the coin flip its answer is
// worth. Returns 1 whenever there is no filter, the literal is not a byte
// string the filter covers, or the fill is unknown.
func bloomConfidence(st *ColStats, lit any) float64 {
	if st.Bloom == nil {
		return 1
	}
	switch lit.(type) {
	case string, []byte:
	default:
		return 1
	}
	fill := st.BloomFill
	if fill <= 0 {
		fill = st.Bloom.FillFraction()
	}
	if fill <= 0 || fill >= 1 {
		return 1
	}
	fpp := math.Pow(fill, float64(st.Bloom.K()))
	return 1 / (1 + fpp)
}

func estimateRange(q *rangePred, stats StatsFunc) float64 {
	st := stats(q.col)
	if st == nil || st.Rows == 0 {
		return defaultRangeFraction
	}
	if h := st.Hist; h != nil {
		lo, okLo := h.FractionBelow(q.lo, false)
		hi, okHi := h.FractionBelow(q.hi, true)
		if okLo && okHi {
			return valueFraction(st) * clampFraction(hi-lo)
		}
	}
	lo, okLo := fractionBelow(st, q.lo)
	hi, okHi := fractionBelow(st, q.hi)
	if okLo && okHi {
		return valueFraction(st) * clampFraction(hi-lo)
	}
	return valueFraction(st) * defaultRangeFraction
}

// fractionBelow estimates the fraction of the column's values below lit
// under a uniform spread across [Min, Max]. ok is false for non-numeric
// bounds or missing statistics.
func fractionBelow(st *ColStats, lit any) (float64, bool) {
	if st == nil || !st.HasMinMax {
		return 0, false
	}
	lo, okLo := asFloat(st.Min)
	hi, okHi := asFloat(st.Max)
	v, okV := asFloat(lit)
	if !okLo || !okHi || !okV || hi <= lo {
		return 0, false
	}
	return clampFraction((v - lo) / (hi - lo)), true
}
