package scan

import "sort"

// Equi-depth histograms for selectivity estimation. Zone maps answer "can
// this group match at all?"; a histogram answers "how many rows?" — the
// statistic the cost model needs to size tasks, pick eager vs lazy
// materialization, and judge shared-batch admission before paying for
// bytes. Equi-depth (every bucket holds the same number of observations)
// beats equi-width on exactly the data the paper's crawl workload has:
// skewed value distributions where a uniform-spread interpolation between
// Min and Max is off by orders of magnitude.
//
// Buckets are built from a bounded systematic sample of the column's
// non-null values (internal/colfile samples on the write path), so counts
// are sample counts: every probe answers a *fraction* of the total, never
// an absolute row count, and scaling to rows is the caller's job. A run of
// equal values large enough to fill a bucket becomes a *degenerate* bucket
// (lo == hi): the histogram's heavy hitters, which make equality estimates
// exact up to sampling error instead of 1/Distinct guesses.

// histMaxBuckets bounds a decoded histogram; anything larger is corruption,
// not a finer histogram (builders cap far below this).
const histMaxBuckets = 1024

// Histogram is an equi-depth histogram over one column's non-null values.
// A nil *Histogram means "no histogram": estimation falls back to the
// uniform-spread model. Bounds use the serde Go value representations and
// compare via CompareValues, so string histograms work where uniform
// interpolation (numeric only) cannot.
type Histogram struct {
	los    []any // per-bucket lowest value, ascending
	his    []any // per-bucket highest value; lo == hi is a degenerate bucket
	counts []int64
	total  int64
}

// NewHistogram reconstructs a decoded histogram. It returns nil (no
// histogram) unless the geometry is valid: equal-length slices, at least
// one bucket, positive counts, and non-decreasing bounds.
func NewHistogram(los, his []any, counts []int64) *Histogram {
	n := len(counts)
	if n == 0 || n > histMaxBuckets || len(los) != n || len(his) != n {
		return nil
	}
	var total int64
	for i := 0; i < n; i++ {
		if counts[i] <= 0 {
			return nil
		}
		if c, ok := CompareValues(los[i], his[i]); !ok || c > 0 {
			return nil
		}
		if i > 0 {
			if c, ok := CompareValues(his[i-1], los[i]); !ok || c > 0 {
				return nil
			}
		}
		total += counts[i]
	}
	return &Histogram{los: los, his: his, counts: counts, total: total}
}

// BuildHistogram builds an equi-depth histogram with at most maxBuckets
// depth buckets from a sample of comparable values (order irrelevant; the
// builder sorts a copy). Values whose run length reaches the bucket depth
// get degenerate buckets of their own, so the result can carry up to
// 2*maxBuckets buckets on heavily skewed data. Returns nil when the sample
// is empty, maxBuckets < 1, or the values do not mutually compare.
func BuildHistogram(sample []any, maxBuckets int) *Histogram {
	n := len(sample)
	if n == 0 || maxBuckets < 1 {
		return nil
	}
	sorted := append([]any(nil), sample...)
	comparable := true
	sort.SliceStable(sorted, func(i, j int) bool {
		c, ok := CompareValues(sorted[i], sorted[j])
		if !ok {
			comparable = false
		}
		return ok && c < 0
	})
	if !comparable {
		return nil
	}
	depth := (n + maxBuckets - 1) / maxBuckets
	h := &Histogram{}
	var curLo, curHi any
	var curCount int
	flush := func() {
		if curCount > 0 {
			h.los = append(h.los, curLo)
			h.his = append(h.his, curHi)
			h.counts = append(h.counts, int64(curCount))
			h.total += int64(curCount)
			curCount = 0
		}
	}
	for i := 0; i < n; {
		// The run of values equal to sorted[i].
		j := i + 1
		for j < n {
			if c, _ := CompareValues(sorted[j], sorted[i]); c != 0 {
				break
			}
			j++
		}
		run := j - i
		if run >= depth {
			// Heavy hitter: its own degenerate bucket, never diluted into
			// neighbours — this is what makes equality estimates on skewed
			// data exact instead of 1/Distinct.
			flush()
			h.los = append(h.los, sorted[i])
			h.his = append(h.his, sorted[i])
			h.counts = append(h.counts, int64(run))
			h.total += int64(run)
		} else {
			if curCount == 0 {
				curLo = sorted[i]
			}
			curHi = sorted[i]
			curCount += run
			if curCount >= depth {
				flush()
			}
		}
		i = j
	}
	flush()
	if len(h.counts) == 0 {
		return nil
	}
	return h
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// Total returns the number of sampled observations the buckets cover.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Bucket returns bucket i's bounds and observation count.
func (h *Histogram) Bucket(i int) (lo, hi any, count int64) {
	return h.los[i], h.his[i], h.counts[i]
}

// MaxBucketFraction returns the largest single bucket's share of the total
// — the provable resolution bound of any range estimate (an estimate can
// be off by at most the mass of the buckets straddling its endpoints).
func (h *Histogram) MaxBucketFraction() float64 {
	if h == nil || h.total == 0 {
		return 1
	}
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(h.total)
}

// FractionBelow estimates the fraction of observations ordered below v
// (inclusive additionally counts observations equal to v). ok is false
// when v does not compare against the bucket bounds.
func (h *Histogram) FractionBelow(v any, inclusive bool) (float64, bool) {
	if h == nil || h.total == 0 {
		return 0, false
	}
	var below float64
	for i := range h.counts {
		cLo, ok := CompareValues(v, h.los[i])
		if !ok {
			return 0, false
		}
		if cLo < 0 || (cLo == 0 && !inclusive && h.los[i] == h.his[i]) {
			// v is before this bucket (or equals a degenerate bucket's value
			// exclusively): nothing here or beyond counts.
			break
		}
		cHi, ok := CompareValues(v, h.his[i])
		if !ok {
			return 0, false
		}
		switch {
		case cHi > 0 || (cHi == 0 && inclusive):
			below += float64(h.counts[i])
		case cLo == 0 && !inclusive:
			// v equals the bucket's low bound, exclusively: none of it.
		default:
			// v falls inside the bucket: interpolate where the bounds are
			// numeric, otherwise assume half the bucket (the error is at
			// most one bucket's mass either way — the equi-depth bound).
			frac := 0.5
			if lo, okLo := asFloat(h.los[i]); okLo {
				if hi, okHi := asFloat(h.his[i]); okHi && hi > lo {
					if x, okX := asFloat(v); okX {
						frac = clampFraction((x - lo) / (hi - lo))
					}
				}
			}
			below += frac * float64(h.counts[i])
		}
	}
	return below / float64(h.total), true
}

// EqFraction returns the fraction of observations equal to v when the
// histogram can answer exactly (up to sampling error): v sits in a
// degenerate bucket (its mass is the answer) or outside every bucket
// (zero). exact is false otherwise — the caller should fall back to a
// distinct-count model, capped by EqCap.
func (h *Histogram) EqFraction(v any) (frac float64, exact bool) {
	if h == nil || h.total == 0 {
		return 0, false
	}
	inAny := false
	var mass int64
	for i := range h.counts {
		cLo, okLo := CompareValues(v, h.los[i])
		cHi, okHi := CompareValues(v, h.his[i])
		if !okLo || !okHi {
			return 0, false
		}
		if cLo < 0 || cHi > 0 {
			continue
		}
		inAny = true
		if cLo == 0 && cHi == 0 {
			// Degenerate bucket holding exactly v.
			mass += h.counts[i]
		} else {
			// v falls inside a spread bucket: the histogram cannot isolate
			// its frequency.
			return 0, false
		}
	}
	if !inAny {
		// v is between buckets (or outside the sampled range but inside
		// Min/Max, which pruning already checked): the sample never saw it,
		// so its frequency is below the histogram's resolution. Report the
		// sub-resolution floor rather than zero — the sample may simply
		// have missed a rare value.
		return 1 / float64(2*h.total), true
	}
	return float64(mass) / float64(h.total), true
}

// EqCap returns an upper bound on the fraction of observations equal to v:
// the mass of the bucket(s) containing it. ok is false when v does not
// compare against the bounds.
func (h *Histogram) EqCap(v any) (cap float64, ok bool) {
	if h == nil || h.total == 0 {
		return 0, false
	}
	var mass int64
	for i := range h.counts {
		cLo, okLo := CompareValues(v, h.los[i])
		cHi, okHi := CompareValues(v, h.his[i])
		if !okLo || !okHi {
			return 0, false
		}
		if cLo >= 0 && cHi <= 0 {
			mass += h.counts[i]
		}
	}
	return float64(mass) / float64(h.total), true
}
