package scan

// Dictionary-id predicate evaluation. A DCSL column stores each window's
// values as ids into a per-window dictionary; equality against a literal
// does not need the strings back. The storage layer decodes the batch's
// ids (a fraction of the string bytes) into an IDVector, the needle is
// resolved to its id once per window, and the row loop compares integers.
// A window whose dictionary lacks the needle decides every row without
// touching a single value byte.

// IDResolver resolves a literal to its id within one dictionary window.
// colfile's window dictionaries (compress.Dictionary) implement it.
type IDResolver interface {
	// ResolveID returns the needle's id and whether the window's
	// dictionary contains it at all.
	ResolveID(needle string) (uint32, bool)
}

// IDSegment is one dictionary window's slice of an IDVector: rows
// [Start, End) of the batch share the Dict id space.
type IDSegment struct {
	Start, End int
	Dict       IDResolver
}

// IDVector holds one column's dictionary ids for a contiguous batch of
// records, split into per-window segments. Like a Vector it is
// append-only during decode and read-only afterwards; cached id vectors
// are shared between scans and must never be mutated.
type IDVector struct {
	IDs  []uint32
	Segs []IDSegment

	null []uint64 // bit set = null; nil when all valid
	n    int
}

// NewIDVector returns an empty id vector with capacity for n rows.
func NewIDVector(n int) *IDVector {
	return &IDVector{IDs: make([]uint32, 0, n)}
}

// Len returns the number of rows.
func (v *IDVector) Len() int { return v.n }

// AppendID appends one row's id.
func (v *IDVector) AppendID(id uint32) {
	v.IDs = append(v.IDs, id)
	v.n++
}

// AppendNull appends a null row.
func (v *IDVector) AppendNull() {
	v.IDs = append(v.IDs, 0)
	w := v.n >> 6
	for len(v.null) <= w {
		v.null = append(v.null, 0)
	}
	v.null[w] |= 1 << (uint(v.n) & 63)
	v.n++
}

// IsNull reports whether row i is null.
func (v *IDVector) IsNull(i int) bool {
	w := i >> 6
	if w >= len(v.null) {
		return false
	}
	return v.null[w]&(1<<(uint(i)&63)) != 0
}

// CloseSegment records that rows [start, Len()) belong to the window with
// the given dictionary. Decoders call it at each window boundary so
// segments tile the vector.
func (v *IDVector) CloseSegment(start int, dict IDResolver) {
	if start >= v.n {
		return
	}
	v.Segs = append(v.Segs, IDSegment{Start: start, End: v.n, Dict: dict})
}

// MemBytes estimates the vector's resident size for cache accounting.
// Dictionaries are shared with the reader and not charged here.
func (v *IDVector) MemBytes() int64 {
	return int64(len(v.IDs))*4 + int64(len(v.null))*8 + int64(len(v.Segs))*24
}

// IDSource is optionally implemented by a VecSource whose storage keeps
// dictionary-encoded columns — the capability hook dictionary-id
// evaluation probes for.
type IDSource interface {
	// IDVec returns the column's id vector for the batch, decoding it on
	// first use, or nil (with nil error) when the column's storage is not
	// dictionary-encoded. The vector is read-only.
	IDVec(column string) (*IDVector, error)
}

// DictCompareCounter is optionally implemented by a VecSource to receive
// the number of id-space comparisons performed, for cost accounting
// (sim.TaskStats.DictIdCompares).
type DictCompareCounter interface {
	CountDictIDCompares(n int64)
}

// litAsString views an equality literal as a dictionary needle.
func litAsString(lit any) (string, bool) {
	switch x := lit.(type) {
	case string:
		return x, true
	case []byte:
		return string(x), true
	}
	return "", false
}

// vecEvalIDs decides == / != over dictionary ids: one needle resolution
// per window, integer compares per row, and zero value bytes decoded.
// Verdicts match the string path exactly — ids are injective within a
// window, so id equality is value equality.
func (p *cmpPred) vecEvalIDs(src VecSource, iv *IDVector, in *Selection, needle string) *Selection {
	out := GetEmptySelection(in.Len())
	var compares int64
	for _, seg := range iv.Segs {
		id, present := seg.Dict.ResolveID(needle)
		if !present && p.op == OpEq {
			// Absent needle: no row in this window can match.
			continue
		}
		for i := in.Next(seg.Start); i >= 0 && i < seg.End; i = in.Next(i + 1) {
			if iv.IsNull(i) {
				continue
			}
			if !present {
				out.Set(i) // != against an absent needle holds everywhere
				continue
			}
			compares++
			if (iv.IDs[i] == id) == (p.op == OpEq) {
				out.Set(i)
			}
		}
	}
	if c, ok := src.(DictCompareCounter); ok && compares > 0 {
		c.CountDictIDCompares(compares)
	}
	return out
}
