package scan

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a predicate from its expression-language form, the inverse of
// Predicate.String. The grammar:
//
//	expr    := or
//	or      := and ("||" and)*
//	and     := unary ("&&" unary)*
//	unary   := "!" unary | "(" expr ")" | call | cmp | "true" | "false"
//	call    := "prefix" "(" ident "," string ")"
//	         | "exists" "(" ident "," string ")"
//	         | "between" "(" ident "," literal "," literal ")"
//	         | "isnull" "(" ident ")"
//	         | "notnull" "(" ident ")"
//	cmp     := ident ("==" | "!=" | "<" | "<=" | ">" | ">=") literal
//	literal := integer | float | string | "true" | "false"
//	         | "inf" | "-inf" | "nan"
//
// Identifiers are column names ([A-Za-z_][A-Za-z0-9_]*); strings use Go
// quoting. "true" and "false" parse to empty AND/OR, matching everything
// and nothing respectively. The keywords (true, false, inf, nan, and the
// call names) are reserved and cannot be used as column names.
func Parse(src string) (Predicate, error) {
	p := &parser{src: src}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("scan: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return pred, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) Predicate {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("scan: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// eat consumes the literal token if present.
func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.eat(tok) {
		return p.errf("expected %q", tok)
	}
	return nil
}

func (p *parser) parseExpr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Predicate{left}
	for p.eat("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return Or(kids...), nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Predicate{left}
	for p.eat("&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return And(kids...), nil
}

func (p *parser) parseUnary() (Predicate, error) {
	if p.eat("!") {
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(kid), nil
	}
	if p.eat("(") {
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	ident, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	switch ident {
	case "true":
		return And(), nil
	case "false":
		return Or(), nil
	case "prefix", "exists", "between", "isnull", "notnull":
		if p.peekByte() == '(' {
			return p.parseCall(ident)
		}
	}
	return p.parseCmp(ident)
}

func (p *parser) peekByte() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseCall(fn string) (Predicate, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	col, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var pred Predicate
	switch fn {
	case "isnull":
		pred = IsNull(col)
	case "notnull":
		pred = NotNull(col)
	case "prefix", "exists":
		if err := p.expect(","); err != nil {
			return nil, err
		}
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		if fn == "prefix" {
			pred = HasPrefix(col, s)
		} else {
			pred = KeyExists(col, s)
		}
	case "between":
		if err := p.expect(","); err != nil {
			return nil, err
		}
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		pred = Between(col, lo, hi)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pred, nil
}

func (p *parser) parseCmp(col string) (Predicate, error) {
	p.skipSpace()
	var op Op
	switch {
	case p.eat("=="):
		op = OpEq
	case p.eat("!="):
		op = OpNe
	case p.eat("<="):
		op = OpLe
	case p.eat("<"):
		op = OpLt
	case p.eat(">="):
		op = OpGe
	case p.eat(">"):
		op = OpGt
	default:
		return nil, p.errf("expected comparison operator after column %q", col)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return Cmp(col, op, lit), nil
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if c == '_' || unicode.IsLetter(c) || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseString() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", p.errf("expected quoted string")
	}
	// Walk the quoted form, honoring escapes, then unquote.
	end := p.pos + 1
	for end < len(p.src) && p.src[end] != '"' {
		if p.src[end] == '\\' {
			end++
		}
		end++
	}
	if end >= len(p.src) {
		return "", p.errf("unterminated string")
	}
	s, err := strconv.Unquote(p.src[p.pos : end+1])
	if err != nil {
		return "", p.errf("bad string literal: %v", err)
	}
	p.pos = end + 1
	return s, nil
}

func (p *parser) parseLiteral() (any, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("expected literal")
	}
	switch c := p.src[p.pos]; {
	case c == '"':
		return p.parseString()
	case c == 't' || c == 'f' || c == 'i' || c == 'n':
		ident, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		switch ident {
		case "true":
			return true, nil
		case "false":
			return false, nil
		case "inf":
			return math.Inf(1), nil
		case "nan":
			return math.NaN(), nil
		}
		return nil, p.errf("unexpected literal %q", ident)
	}
	start := p.pos
	if p.src[p.pos] == '-' || p.src[p.pos] == '+' {
		p.pos++
		if strings.HasPrefix(p.src[p.pos:], "inf") {
			p.pos += len("inf")
			if p.src[start] == '-' {
				return math.Inf(-1), nil
			}
			return math.Inf(1), nil
		}
	}
	isFloat := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' || c == 'e' || c == 'E' {
			isFloat = true
			p.pos++
			continue
		}
		if (c == '-' || c == '+') && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return nil, p.errf("expected literal")
	}
	text := p.src[start:p.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q: %v", text, err)
		}
		return f, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, p.errf("bad integer literal %q: %v", text, err)
	}
	return n, nil
}
