package scan

import "fmt"

// Cost-based plan choice. The estimator (estimate.go) turns footer
// statistics into a qualifying fraction; ChoosePlan turns that fraction
// into the two execution decisions the engine leaves open per job —
// materialization mode and task sizing — and AdmissionCompatible gates a
// third made by the batch scheduler (shared-scan co-admission). All three
// are cost decisions, never correctness ones: every choice produces
// byte-identical output to its forced alternative, which is what the
// planning property tests pin down.

const (
	// lazyFractionCutoff is the estimated qualifying fraction below which
	// lazy record construction wins: with few matches, skipping the
	// non-filter columns past non-qualifying records saves more than the
	// per-access indirection costs on the matches. Above it, eager
	// materialization's streaming decode is cheaper. The paper's Section 5
	// experiments put the crossover well above this; 0.25 keeps the choice
	// conservative (eager is the safer default at mid selectivities).
	lazyFractionCutoff = 0.25

	// admissionFactor and admissionSlack bound shared-scan co-admission:
	// a candidate batch's union predicate may be at most admissionFactor
	// times less selective than its most selective member (plus slack for
	// fractions near zero). Beyond that, sharing one cursor set would
	// destroy the selective member's pruning — the shared scan runs at the
	// union's selectivity — and the member is better served by its own
	// task.
	admissionFactor = 8.0
	admissionSlack  = 0.02
)

// PlanInputs is what the cost model knows about one job's scan before it
// runs, gathered from whole-file footer statistics.
type PlanInputs struct {
	// HasPredicate reports whether the scan is selective at all.
	HasPredicate bool
	// Fraction is the estimated qualifying fraction over the surviving
	// split-directories, in [0, 1]. Meaningful only when Estimated.
	Fraction float64
	// Estimated reports whether real statistics informed Fraction; false
	// means estimation failed (no footers, no stats sections) and every
	// cost decision falls back to its default.
	Estimated bool
	// Dirs is the number of split-directories surviving the scheduler
	// tier.
	Dirs int
}

// PlanChoice is the planner's recommendation: the materialization mode and
// whether task sizing should follow estimated selectivity
// (core.AutoDirsPerSplit). Reasons records why, one line per decision, in
// the order decided — the "why" surface of EXPLAIN.
type PlanChoice struct {
	Lazy     bool
	AutoSize bool
	Reasons  []string
}

// ChoosePlan makes the cost-based execution choices for one job. It is
// pure: same inputs, same choice — which is what makes planner decisions
// testable against their forced alternatives.
func ChoosePlan(in PlanInputs) PlanChoice {
	var c PlanChoice
	if !in.HasPredicate {
		c.Reasons = append(c.Reasons,
			"no predicate: eager materialization (every record is consumed) and constant task sizing")
		return c
	}
	if !in.Estimated {
		c.Reasons = append(c.Reasons,
			"no usable statistics: eager materialization and constant task sizing (estimation failed)")
		return c
	}
	if in.Fraction <= lazyFractionCutoff {
		c.Lazy = true
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"estimated fraction %.4f <= %.2f: lazy materialization skips non-filter columns past non-matches",
			in.Fraction, lazyFractionCutoff))
	} else {
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"estimated fraction %.4f > %.2f: eager materialization streams cheaper than per-access laziness",
			in.Fraction, lazyFractionCutoff))
	}
	if in.Dirs > 1 {
		c.AutoSize = true
		c.Reasons = append(c.Reasons, fmt.Sprintf(
			"%d surviving split-directories: auto task sizing merges ~rows/matches directories per map task",
			in.Dirs))
	} else {
		c.Reasons = append(c.Reasons,
			"at most one surviving split-directory: task sizing has nothing to merge")
	}
	return c
}

// AdmissionCompatible decides shared-scan co-admission: whether a batch
// whose union predicate is estimated to match unionFrac of the rows may
// admit a member whose own estimate is memberMin (the most selective
// member's fraction). Incompatible members run in their own shared group
// rather than behind a cursor set whose union would destroy their pruning.
func AdmissionCompatible(unionFrac, memberMin float64) bool {
	return unionFrac <= admissionFactor*memberMin+admissionSlack
}
