package scan

import "fmt"

// Hierarchical scan planning. A selective scan is pruned at four tiers,
// each owned by the layer with the cheapest view of the data:
//
//	scheduler  whole split-directories are dropped before map tasks exist,
//	           from whole-file aggregate statistics read out of column-file
//	           footers (core.InputFormat.PlannedSplits);
//	file       an opened reader skips a whole split-directory without
//	           building any group index, from the same aggregates;
//	group      zone-map pruning jumps record groups inside a file;
//	value      exact per-record evaluation over filter columns.
//
// Planner is the shared implementation of the conservative tiers: every
// consumer (CIF eager and lazy readers, the split scheduler, future
// formats) asks the same Planner, so a pruning proof is identical wherever
// it fires. PruneReport is the scheduler tier's per-job summary.

// Planner drives conservative pruning for one predicate. A nil Planner (or
// a Planner over a nil predicate) never prunes, so callers need no guards.
type Planner struct {
	pred    Predicate
	cols    []string
	noBloom bool
}

// NewPlanner returns a planner for p. p may be nil.
func NewPlanner(p Predicate) *Planner {
	pl := &Planner{pred: p}
	if p != nil {
		pl.cols = p.Columns(nil)
	}
	return pl
}

// SetBloom enables or disables Bloom-filter consultation for every tier
// this planner decides (default on). Disabling restores zone-map-only
// pruning exactly — the planner strips filters from the statistics before
// the predicate sees them — which is what makes bloom-on vs bloom-off
// output equivalence testable and regressions bisectable, mirroring
// Spec.NoElide for the scheduler tier.
func (p *Planner) SetBloom(on bool) {
	if p != nil {
		p.noBloom = !on
	}
}

// statsView applies the planner's bloom setting to a statistics source.
func (p *Planner) statsView(stats StatsFunc) StatsFunc {
	if p.noBloom {
		return StripBloom(stats)
	}
	return stats
}

// StripBloom wraps a statistics source, hiding Bloom filters from its
// consumers (shallow copies; the underlying entries are never mutated).
// Planner and the selectivity estimator use it to honor Spec.NoBloom.
func StripBloom(stats StatsFunc) StatsFunc {
	return func(col string) *ColStats {
		st := stats(col)
		if st == nil || st.Bloom == nil {
			return st
		}
		c := *st
		c.Bloom = nil
		return &c
	}
}

// Predicate returns the planned predicate (nil when none).
func (p *Planner) Predicate() Predicate {
	if p == nil {
		return nil
	}
	return p.pred
}

// FilterColumns returns the distinct columns the predicate reads, in
// first-appearance order. Callers must not mutate the returned slice.
func (p *Planner) FilterColumns() []string {
	if p == nil {
		return nil
	}
	return p.cols
}

// PruneFile decides the scheduler and file tiers: given whole-file (or
// whole-split) aggregate statistics per column, NoMatch proves the file
// holds no qualifying record. Columns without aggregates resolve to nil,
// which pruning treats as MayMatch.
func (p *Planner) PruneFile(stats StatsFunc) Tri {
	if p == nil || p.pred == nil {
		return MayMatch
	}
	return p.pred.Prune(p.statsView(stats))
}

// PruneFileRows is PruneFile plus the accounting protocol both file-tier
// consumers share: on a NoMatch proof it reports how many records the
// proof covers, taken from the statistics the predicate consulted — or,
// when the proof consulted none (a constant-false predicate), from
// recordCount. Keeping the fallback here keeps the scheduler and reader
// tiers' record accounting identical by construction.
func (p *Planner) PruneFileRows(stats StatsFunc, recordCount func() int64) (pruned bool, rows int64) {
	if p == nil || p.pred == nil {
		return false, 0
	}
	wrapped := func(col string) *ColStats {
		st := stats(col)
		if st != nil {
			rows = st.Rows
		}
		return st
	}
	if p.pred.Prune(p.statsView(wrapped)) != NoMatch {
		return false, 0
	}
	if rows == 0 && recordCount != nil {
		rows = recordCount()
	}
	return true, rows
}

// GroupStatsFunc resolves a column name and a record index to the zone-map
// statistics of the record group containing that record, plus the index one
// past the group's last record. It returns (nil, 0) when no statistics
// cover the record.
type GroupStatsFunc func(column string, rec int64) (*ColStats, int64)

// PruneGroup decides the group tier for the record at rec. Columns may use
// different layouts with different group geometries, so the verdict is
// scoped to the narrowest group consulted: the returned end is the smallest
// extent bound, and [rec, end) lies inside every consulted group. On
// NoMatch the caller may skip to end; on MayMatch it need not re-consult
// zone maps before end.
//
// byBloom attributes the proof: true when the NoMatch verdict needed a
// Bloom filter (the same statistics with filters stripped could not prune),
// which callers fold into sim.TaskStats.BloomPruned so the sweep can split
// bloom wins out of GroupsPruned. The re-check runs only on the NoMatch
// path, over statistics the first pass already loaded.
func (p *Planner) PruneGroup(rec, total int64, group GroupStatsFunc) (tri Tri, end int64, byBloom bool) {
	if p == nil || p.pred == nil {
		return MayMatch, total, false
	}
	minEnd := total
	fn := func(col string) *ColStats {
		st, end := group(col, rec)
		if st == nil {
			return nil
		}
		if end < minEnd {
			minEnd = end
		}
		return st
	}
	if p.pred.Prune(p.statsView(fn)) == NoMatch && minEnd > rec {
		byBloom := !p.noBloom && p.pred.Prune(StripBloom(fn)) != NoMatch
		return NoMatch, minEnd, byBloom
	}
	return MayMatch, minEnd, false
}

// MatchAllGroup decides whether every record in [rec, end) satisfies the
// predicate from zone statistics alone — the aggregate drain's shortcut
// tier (a region proven all-matching folds into aggregates straight from
// the zone map, decoding nothing). Like PruneGroup the verdict is scoped
// to the narrowest group consulted: the returned end is the smallest
// extent bound, and [rec, end) lies inside every consulted group. A nil
// planner or predicate matches everything (end = total).
func (p *Planner) MatchAllGroup(rec, total int64, group GroupStatsFunc) (all bool, end int64) {
	if p == nil || p.pred == nil {
		return true, total
	}
	minEnd := total
	fn := func(col string) *ColStats {
		st, end := group(col, rec)
		if st == nil {
			return nil
		}
		if end < minEnd {
			minEnd = end
		}
		return st
	}
	if p.pred.MatchAll(p.statsView(fn)) && minEnd > rec {
		return true, minEnd
	}
	return false, minEnd
}

// PruneReport summarizes the scheduler tier's decisions for one job: how
// many split-directories existed, how many were dropped before any map
// task was created, and how many column-file footers were consulted to
// prove it. mapred.Result carries the job's report.
type PruneReport struct {
	// SplitsTotal is the number of split-directories the input datasets
	// hold; SplitsPruned of them were dropped by footer statistics alone.
	SplitsTotal  int
	SplitsPruned int
	// FilesChecked is the number of column files whose aggregate
	// statistics were read (footer and stats section only — never data).
	FilesChecked int
	// RecordsPruned is the number of records inside the elided
	// split-directories. Folding it into the job's RecordsPruned counter
	// keeps the invariant "records pruned at any tier + records filtered
	// + records returned == dataset size" independent of which tier a
	// proof fired at.
	RecordsPruned int64
	// Columns are the predicate's filter columns, whose files were
	// consulted.
	Columns []string
	// Vectorized reports which execution path the job's readers run:
	// batch-at-a-time vector evaluation, or the record-at-a-time scalar
	// loop (predicate-less scans and Spec.NoVec both report false).
	Vectorized bool
	// SharedDeclined counts co-scheduling admissions the batch scheduler
	// declined for this job: potential co-members whose union predicate
	// would have destroyed the batch's pruning (AdmissionCompatible said
	// no), summed over the job's shared runs. Zero for solo runs.
	SharedDeclined int
}

// String renders a one-line summary.
func (r PruneReport) String() string {
	exec := "scalar"
	if r.Vectorized {
		exec = "vectorized"
	}
	s := fmt.Sprintf("scheduled %d of %d split-directories (%d pruned by file statistics, %d footers read), %s execution",
		r.SplitsTotal-r.SplitsPruned, r.SplitsTotal, r.SplitsPruned, r.FilesChecked, exec)
	if r.SharedDeclined > 0 {
		s += fmt.Sprintf(", %d shared-scan admissions declined", r.SharedDeclined)
	}
	return s
}
