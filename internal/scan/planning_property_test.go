package scan

import (
	"math"
	"math/rand"
	"testing"
)

// The estimation-accuracy harness the cost model is anchored by: random
// value distributions (uniform, zipf, clustered) × predicate shapes, each
// checked against ground truth. Two guarantees are pinned:
//
//   - per case, a histogram-backed estimate errs by at most the equi-depth
//     bucket-width bound — one boundary bucket per predicate bound for
//     ranges, one bucket depth for equalities (heavier values get exact
//     degenerate buckets);
//   - in aggregate, histogram estimates are never worse than the uniform
//     interpolation they replace.
//
// Runs in -short (fewer trials, same properties).

// propDistributions generates n values under the named skew.
func propDistribution(rng *rand.Rand, skew string, n int) []int64 {
	vals := make([]int64, n)
	switch skew {
	case "uniform":
		for i := range vals {
			vals[i] = int64(rng.Intn(10000))
		}
	case "zipf":
		z := rand.NewZipf(rng, 1.3, 1, 9999)
		for i := range vals {
			vals[i] = int64(z.Uint64())
		}
	case "clustered":
		base := int64(rng.Intn(5000))
		for i := range vals {
			if i%97 == 0 {
				base = int64(rng.Intn(5000))
			}
			vals[i] = base + int64(rng.Intn(50))
		}
	}
	return vals
}

// trueFraction evaluates p exactly over the values.
func trueFraction(t *testing.T, p Predicate, vals []int64) float64 {
	matched := 0
	for _, v := range vals {
		v := v
		ok, err := p.Eval(Getter(func(string) (any, error) { return v, nil }))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			matched++
		}
	}
	return float64(matched) / float64(len(vals))
}

func TestHistogramEstimationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20110829))
	trials := 60
	if testing.Short() {
		trials = 18
	}
	var histErr, uniErr float64
	var cases int
	for trial := 0; trial < trials; trial++ {
		skew := []string{"uniform", "zipf", "clustered"}[trial%3]
		n := 500 + rng.Intn(1500)
		vals := propDistribution(rng, skew, n)

		sample := make([]any, n)
		lo, hi := vals[0], vals[0]
		distinct := make(map[int64]bool, n)
		for i, v := range vals {
			sample[i] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			distinct[v] = true
		}
		h := BuildHistogram(sample, 16)
		if h == nil {
			t.Fatalf("%s trial %d: no histogram", skew, trial)
		}
		base := ColStats{Rows: int64(n), HasMinMax: true, Min: lo, Max: hi, Distinct: int64(len(distinct))}
		withHist := base
		withHist.Hist = h
		histStats := func(string) *ColStats { return &withHist }
		uniStats := func(string) *ColStats { return &base }

		pick := func() int64 { return vals[rng.Intn(n)] }
		a, b := pick(), pick()
		if a > b {
			a, b = b, a
		}
		ranges := []Predicate{
			Le("c", pick()),
			Gt("c", pick()),
			Between("c", a, b),
		}
		// Range predicates: each bound contributes at most one boundary
		// bucket of error (the sample here is the full data, so no
		// sampling slack is needed beyond a rounding epsilon).
		rangeBound := 2*h.MaxBucketFraction() + 0.01
		for _, p := range ranges {
			truth := trueFraction(t, p, vals)
			hEst := EstimateFraction(p, histStats)
			uEst := EstimateFraction(p, uniStats)
			if err := math.Abs(hEst - truth); err > rangeBound {
				t.Errorf("%s trial %d: %s: histogram estimate %.4f vs truth %.4f (err %.4f > bound %.4f)",
					skew, trial, p, hEst, truth, err, rangeBound)
			}
			histErr += math.Abs(hEst - truth)
			uniErr += math.Abs(uEst - truth)
			cases++
		}
		// Equality: a value either earned a degenerate bucket (exact
		// answer) or occupies less than one bucket depth — either way the
		// estimate errs by at most one bucket's fraction.
		eqBound := h.MaxBucketFraction() + 0.01
		p := Eq("c", pick())
		truth := trueFraction(t, p, vals)
		hEst := EstimateFraction(p, histStats)
		uEst := EstimateFraction(p, uniStats)
		if err := math.Abs(hEst - truth); err > eqBound {
			t.Errorf("%s trial %d: %s: equality estimate %.4f vs truth %.4f (err %.4f > bound %.4f)",
				skew, trial, p, hEst, truth, err, eqBound)
		}
		histErr += math.Abs(hEst - truth)
		uniErr += math.Abs(uEst - truth)
		cases++
	}
	// The aggregate guarantee: histograms never lose to the uniform model
	// they replace (per-case ties are fine; a small epsilon absorbs float
	// noise).
	if histErr > uniErr+0.01*float64(cases) {
		t.Fatalf("histogram estimates worse than uniform baseline: mean error %.4f vs %.4f over %d cases",
			histErr/float64(cases), uniErr/float64(cases), cases)
	}
}

// TestChoosePlanDecisions pins the cost model's decision table — ChoosePlan
// is pure, so each row is the whole behavior — and the admission bound's
// edge cases.
func TestChoosePlanDecisions(t *testing.T) {
	cases := []struct {
		name     string
		in       PlanInputs
		lazy     bool
		autoSize bool
	}{
		{"no predicate", PlanInputs{}, false, false},
		{"no stats", PlanInputs{HasPredicate: true, Fraction: 0.01, Dirs: 8}, false, false},
		{"selective", PlanInputs{HasPredicate: true, Estimated: true, Fraction: 0.01, Dirs: 8}, true, true},
		{"at cutoff", PlanInputs{HasPredicate: true, Estimated: true, Fraction: 0.25, Dirs: 8}, true, true},
		{"broad", PlanInputs{HasPredicate: true, Estimated: true, Fraction: 0.8, Dirs: 8}, false, true},
		{"one dir", PlanInputs{HasPredicate: true, Estimated: true, Fraction: 0.01, Dirs: 1}, true, false},
	}
	for _, c := range cases {
		got := ChoosePlan(c.in)
		if got.Lazy != c.lazy || got.AutoSize != c.autoSize {
			t.Errorf("%s: ChoosePlan = lazy=%v auto=%v, want lazy=%v auto=%v",
				c.name, got.Lazy, got.AutoSize, c.lazy, c.autoSize)
		}
		if len(got.Reasons) == 0 {
			t.Errorf("%s: no reasons recorded", c.name)
		}
		again := ChoosePlan(c.in)
		if again.Lazy != got.Lazy || again.AutoSize != got.AutoSize || len(again.Reasons) != len(got.Reasons) {
			t.Errorf("%s: ChoosePlan is not deterministic", c.name)
		}
	}

	adm := []struct {
		union, min float64
		want       bool
	}{
		{0.05, 0.01, true},   // 8x + slack covers it
		{0.9, 0.01, false},   // union destroys the selective member's pruning
		{1, 1, true},         // unfiltered members always batch together
		{0.02, 0.0001, true}, // slack keeps near-zero members batchable
		{0.5, 0.05, false},
	}
	for _, c := range adm {
		if got := AdmissionCompatible(c.union, c.min); got != c.want {
			t.Errorf("AdmissionCompatible(%v, %v) = %v, want %v", c.union, c.min, got, c.want)
		}
	}
}
