package scan

import "sync"

// Selection pooling. Vectorized evaluation churns through short-lived
// bitmaps — one result per predicate node per batch — and the batch
// executors allocate one candidate selection per batch. Recycling them
// through a sync.Pool keeps the steady-state scan loop allocation-free,
// the same discipline vec.Pool applies to vector arenas.
//
// Ownership: VecEval results are owned by the caller; whoever drops the
// last reference may PutSelection it. Selections handed to a cache or
// retained beyond the batch must not be recycled. Internal temporaries
// (the narrowing chain in AND, the remainder in OR) are recycled by
// VecEval itself.

var selPool = sync.Pool{New: func() any { return new(Selection) }}

// GetEmptySelection returns a selection of n rows, none selected, reusing
// pooled storage when available.
func GetEmptySelection(n int) *Selection {
	s := selPool.Get().(*Selection)
	words := (n + 63) / 64
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
	return s
}

// GetFullSelection returns a selection of n rows, all selected, reusing
// pooled storage when available.
func GetFullSelection(n int) *Selection {
	s := GetEmptySelection(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// PutSelection returns a selection to the pool. The caller must hold the
// only reference.
func PutSelection(s *Selection) {
	if s != nil {
		selPool.Put(s)
	}
}

// cloneFromPool is Clone backed by the pool.
func (s *Selection) cloneFromPool() *Selection {
	out := GetEmptySelection(s.n)
	copy(out.words, s.words)
	return out
}
