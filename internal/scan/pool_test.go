package scan_test

// Pooling guards: the vectorized scan loop recycles Selection bitmaps
// through the package pool and AggState keeps its fold scratch across
// batches, so the steady state allocates nothing per batch. These tests
// pin that down with testing.AllocsPerRun — a regression here silently
// turns every batch into garbage-collector work.

import (
	"testing"

	"colmr/internal/scan"
)

func TestAggSelectionPoolAllocationFree(t *testing.T) {
	const n = 4096
	// Warm the pool so the measured loop only recycles.
	for i := 0; i < 8; i++ {
		scan.PutSelection(scan.GetFullSelection(n))
	}
	allocs := testing.AllocsPerRun(200, func() {
		s := scan.GetFullSelection(n)
		if s.Count() != n {
			t.Fatal("full selection lost rows")
		}
		scan.PutSelection(s)
	})
	if allocs > 0 {
		t.Errorf("get/put selection cycle allocates %.1f objects per run, want 0", allocs)
	}
}

func TestAggFoldBatchAllocationFree(t *testing.T) {
	const n = 4096
	ints := scan.NewVector(scan.VecInt64, n)
	for i := 0; i < n; i++ {
		ints.AppendInt(int64(i))
	}
	src := &vecTestSource{vecs: map[string]*scan.Vector{"x": ints}}
	agg, err := scan.ParseAggregate("count,count(x)")
	if err != nil {
		t.Fatal(err)
	}
	st := scan.NewAggState(agg)
	sel := scan.GetFullSelection(n)
	defer scan.PutSelection(sel)
	// First fold creates the global group and the vector scratch.
	if _, err := st.FoldBatch(sel, src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.FoldBatch(sel, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state FoldBatch allocates %.1f objects per run, want 0", allocs)
	}
}

func TestAggVecEvalAllocationFree(t *testing.T) {
	const n = 4096
	ints := scan.NewVector(scan.VecInt64, n)
	for i := 0; i < n; i++ {
		ints.AppendInt(int64(i % 97))
	}
	src := &vecTestSource{vecs: map[string]*scan.Vector{"x": ints}}
	pred := scan.Le("x", int64(40))
	// Warm the selection pool with the shapes the loop uses.
	for i := 0; i < 8; i++ {
		in := scan.GetFullSelection(n)
		out, err := pred.VecEval(src, in)
		if err != nil {
			t.Fatal(err)
		}
		scan.PutSelection(in)
		scan.PutSelection(out)
	}
	allocs := testing.AllocsPerRun(200, func() {
		in := scan.GetFullSelection(n)
		out, err := pred.VecEval(src, in)
		if err != nil {
			t.Fatal(err)
		}
		scan.PutSelection(in)
		scan.PutSelection(out)
	})
	// One allocation per batch is the comparator closure vecComparer builds;
	// everything per-row must come from the pool.
	if allocs > 1 {
		t.Errorf("steady-state VecEval allocates %.1f objects per run, want <= 1", allocs)
	}
}
