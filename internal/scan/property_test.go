package scan_test

// Property test for the scan subsystem: for random schemas, datasets, and
// predicates, a pushdown scan must return exactly the records a full scan
// plus an in-memory filter returns — across all four column layouts, both
// record-construction modes, and arbitrary projections. Because
// scan.SetPredicate serializes through the expression language, every
// random predicate also round-trips the parser.

import (
	"fmt"
	"math/rand"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// randSchema builds a record schema of 2-5 columns over kinds the scan
// subsystem must handle, always including at least one map column so the
// DCSL variant is exercised.
func randSchema(rng *rand.Rand) *serde.Schema {
	kinds := []func() *serde.Schema{
		serde.Int, serde.Long, serde.Double, serde.String,
		serde.Bool, serde.Time, serde.Bytes,
		func() *serde.Schema { return serde.MapOf(serde.Int()) },
		func() *serde.Schema { return serde.ArrayOf(serde.Long()) },
	}
	n := 2 + rng.Intn(4)
	fields := make([]serde.Field, 0, n+1)
	for i := 0; i < n; i++ {
		fields = append(fields, serde.Field{
			Name: fmt.Sprintf("c%d", i),
			Type: kinds[rng.Intn(len(kinds))](),
		})
	}
	fields = append(fields, serde.Field{Name: "m", Type: serde.MapOf(serde.String())})
	return serde.RecordOf("Prop", fields...)
}

// Small value domains keep random predicates meaningfully selective: an
// equality over a 40-value domain matches, a prefix over a 4-prefix pool
// matches, a key over an 8-key pool exists.
var (
	propPrefixes = []string{"alpha/", "beta/", "gamma/", "delta/"}
	propKeys     = []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
)

func randValue(rng *rand.Rand, s *serde.Schema) any {
	switch s.Kind {
	case serde.KindBool:
		return rng.Intn(2) == 0
	case serde.KindInt:
		return int32(rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		return int64(rng.Intn(1000))
	case serde.KindDouble:
		return float64(rng.Intn(100)) / 4
	case serde.KindString:
		return propPrefixes[rng.Intn(len(propPrefixes))] + string(rune('a'+rng.Intn(26)))
	case serde.KindBytes:
		b := make([]byte, 1+rng.Intn(6))
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return b
	case serde.KindMap:
		n := rng.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[propKeys[rng.Intn(len(propKeys))]] = randValue(rng, s.Elem)
		}
		return m
	case serde.KindArray:
		n := rng.Intn(3)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randValue(rng, s.Elem)
		}
		return arr
	}
	panic("unhandled kind")
}

// randLeaf builds a random leaf predicate suited to a random column's
// kind. Literals are drawn from the same domains as the data, so matches
// happen at useful rates.
func randLeaf(rng *rand.Rand, schema *serde.Schema) scan.Predicate {
	f := schema.Fields[rng.Intn(len(schema.Fields))]
	ops := []scan.Op{scan.OpEq, scan.OpNe, scan.OpLt, scan.OpLe, scan.OpGt, scan.OpGe}
	op := ops[rng.Intn(len(ops))]
	switch f.Type.Kind {
	case serde.KindBool:
		return scan.Cmp(f.Name, op, rng.Intn(2) == 0)
	case serde.KindInt:
		if rng.Intn(3) == 0 {
			lo := rng.Intn(40)
			return scan.Between(f.Name, lo, lo+rng.Intn(10))
		}
		return scan.Cmp(f.Name, op, rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		return scan.Cmp(f.Name, op, int64(rng.Intn(1000)))
	case serde.KindDouble:
		return scan.Cmp(f.Name, op, float64(rng.Intn(100))/4)
	case serde.KindString:
		if rng.Intn(2) == 0 {
			p := propPrefixes[rng.Intn(len(propPrefixes))]
			// Sometimes a longer, rarer prefix.
			if rng.Intn(2) == 0 {
				p += string(rune('a' + rng.Intn(26)))
			}
			return scan.HasPrefix(f.Name, p)
		}
		return scan.Cmp(f.Name, op, propPrefixes[rng.Intn(len(propPrefixes))]+string(rune('a'+rng.Intn(26))))
	case serde.KindBytes:
		b := []byte{byte('a' + rng.Intn(4)), byte('a' + rng.Intn(4))}
		return scan.Cmp(f.Name, op, b)
	case serde.KindMap:
		return scan.KeyExists(f.Name, propKeys[rng.Intn(len(propKeys))])
	default: // arrays: only null tests apply
		if rng.Intn(2) == 0 {
			return scan.NotNull(f.Name)
		}
		return scan.IsNull(f.Name)
	}
}

// randPredicate builds a random tree of depth <= 2 over leaves.
func randPredicate(rng *rand.Rand, schema *serde.Schema, depth int) scan.Predicate {
	if depth <= 0 || rng.Intn(3) == 0 {
		return randLeaf(rng, schema)
	}
	switch rng.Intn(3) {
	case 0:
		kids := make([]scan.Predicate, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = randPredicate(rng, schema, depth-1)
		}
		return scan.And(kids...)
	case 1:
		kids := make([]scan.Predicate, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = randPredicate(rng, schema, depth-1)
		}
		return scan.Or(kids...)
	default:
		return scan.Not(randPredicate(rng, schema, depth-1))
	}
}

// layoutVariants are the four layout configurations under test. The DCSL
// variant applies DCSL to map columns and skip lists elsewhere.
func layoutVariants(schema *serde.Schema) []core.LoadOptions {
	dcslPer := map[string]colfile.Options{}
	for _, f := range schema.Fields {
		if f.Type.Kind == serde.KindMap {
			dcslPer[f.Name] = colfile.Options{Layout: colfile.DCSL, StatsEvery: 20}
		}
	}
	return []core.LoadOptions{
		{Default: colfile.Options{Layout: colfile.Plain, StatsEvery: 20}},
		{Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20}},
		{Default: colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 2 << 10}},
		{Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20}, PerColumn: dcslPer},
	}
}

func variantName(i int) string {
	return []string{"plain", "skiplist", "block", "dcsl"}[i]
}

func TestPushdownEquivalenceProperty(t *testing.T) {
	rounds := 30
	records := 250
	if testing.Short() {
		rounds = 8
	}
	rng := rand.New(rand.NewSource(20110407))
	for round := 0; round < rounds; round++ {
		schema := randSchema(rng)
		recs := make([]*serde.GenericRecord, records)
		for i := range recs {
			rec := serde.NewRecord(schema)
			for _, f := range schema.Fields {
				if err := rec.Set(f.Name, randValue(rng, f.Type)); err != nil {
					t.Fatal(err)
				}
			}
			recs[i] = rec
		}
		pred := randPredicate(rng, schema, 2)

		// Brute-force reference: evaluate over the in-memory records.
		var want []*serde.GenericRecord
		for _, rec := range recs {
			ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
			if err != nil {
				t.Fatalf("round %d: pred %s: %v", round, pred, err)
			}
			if ok {
				want = append(want, rec)
			}
		}

		// Random projection of 1..all columns (filter columns may or may
		// not overlap it).
		names := schema.FieldNames()
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		proj := names[:1+rng.Intn(len(names))]
		lazy := rng.Intn(2) == 0

		for vi, opts := range layoutVariants(schema) {
			opts.SplitRecords = int64(records/3 + 1)
			cfg := sim.SingleNode()
			fs := hdfs.New(cfg, int64(round))
			w, err := core.NewWriter(fs, "/p", schema, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				if err := w.Append(rec); err != nil {
					t.Fatalf("round %d %s: %v", round, variantName(vi), err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			conf := &mapred.JobConf{InputPaths: []string{"/p"}}
			core.SetColumns(conf, proj...)
			core.SetLazy(conf, lazy)
			scan.SetPredicate(conf, pred) // serializes through Parse
			// The vectorize dimension: batch and record-at-a-time execution
			// must return identical records in identical order.
			scan.SetVectorize(conf, rng.Intn(2) == 0)
			in := &core.InputFormat{}
			splits, err := in.Splits(fs, conf)
			if err != nil {
				t.Fatal(err)
			}
			var got int
			for _, sp := range splits {
				rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, nil)
				if err != nil {
					t.Fatalf("round %d %s: pred %s: %v", round, variantName(vi), pred, err)
				}
				for {
					_, v, ok, err := rr.Next()
					if err != nil {
						t.Fatalf("round %d %s: pred %s: %v", round, variantName(vi), pred, err)
					}
					if !ok {
						break
					}
					if got >= len(want) {
						t.Fatalf("round %d %s: pred %s: extra record %d", round, variantName(vi), pred, got)
					}
					rec := v.(serde.Record)
					for _, col := range proj {
						gv, err := rec.Get(col)
						if err != nil {
							t.Fatal(err)
						}
						wv, _ := want[got].Get(col)
						if !serde.ValuesEqual(schema.Field(col), gv, wv) {
							t.Fatalf("round %d %s: pred %s: match %d column %s differs: got %v want %v",
								round, variantName(vi), pred, got, col, gv, wv)
						}
					}
					got++
				}
				if err := rr.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if got != len(want) {
				t.Fatalf("round %d %s: pred %s: pushdown returned %d records, brute force %d",
					round, variantName(vi), pred, got, len(want))
			}
		}
	}
}
