package scan

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Tri is the outcome of zone-map pruning.
type Tri int

const (
	// NoMatch proves no record in the group satisfies the predicate.
	NoMatch Tri = iota
	// MayMatch means the statistics cannot rule the group out.
	MayMatch
)

// String returns a short name for the outcome.
func (t Tri) String() string {
	if t == NoMatch {
		return "no-match"
	}
	return "may-match"
}

// ColStats are zone-map statistics for one column over one record group —
// the per-skip-block metadata PowerDrill-style engines use to skip chunks.
// internal/colfile writes one ColStats per group into each column file's
// stats footer and exposes it through colfile.StatsSource.
type ColStats struct {
	// Rows is the number of records in the group.
	Rows int64
	// Nulls is the number of null values (always 0 for datasets loaded by
	// COF, which rejects unset fields; kept for completeness).
	Nulls int64
	// Distinct is the number of distinct values observed, exact unless
	// DistinctCapped, in which case it is a lower bound.
	Distinct       int64
	DistinctCapped bool
	// HasMinMax reports whether Min and Max are populated. It is true for
	// ordered primitive columns (bool, int, long, time, double, string)
	// and false for complex types.
	HasMinMax bool
	// Min and Max are the smallest and largest values in the group, using
	// the serde Go representations.
	Min, Max any
	// HasKeys reports whether Keys is populated (map columns only). Keys
	// is the sorted union of map keys present in the group, complete
	// unless KeysCapped, in which case it is a subset.
	HasKeys    bool
	Keys       []string
	KeysCapped bool
	// Bloom is an optional membership filter over the group's byte
	// strings: column values for string/bytes columns, map keys for map
	// columns (so Bloom != nil on a HasMinMax column means values, and on
	// a HasKeys column means keys — the storage layer never blooms other
	// kinds). A negative probe is a proof of absence; nil means no filter
	// (older footers, non-bloomed kinds, or a filter dropped for
	// saturation) and refutes nothing.
	Bloom *Bloom
	// BloomFill is the filter's fill fraction recorded at write time (CFS4
	// sections), in (0, 1]; 0 means unrecorded, and estimation falls back
	// to counting the decoded filter's bits. It weights bloom-positive
	// equality estimates by the filter's false-positive confidence.
	BloomFill float64
	// Hist is an optional equi-depth histogram over the group's non-null
	// values (CFS4 file-level aggregates). nil means no histogram: range
	// and equality estimation fall back to the uniform-spread model.
	// Histograms never participate in pruning — they are built from a
	// sample and prove nothing.
	Hist *Histogram
}

// HasKey reports whether the group's key universe contains key. It is only
// meaningful when HasKeys is true. The Bloom filter, when present, is
// consulted first: a negative probe refutes membership without walking the
// key list (and stays exact even when the list itself is capped, because
// the filter covers every key observed, not just the retained subset).
func (s *ColStats) HasKey(key string) bool {
	if s.Bloom != nil && !s.Bloom.MayContainString(key) {
		return false
	}
	i := sort.SearchStrings(s.Keys, key)
	return i < len(s.Keys) && s.Keys[i] == key
}

// Merge widens s to also cover the records o describes, keeping every
// conservative property pruning relies on: the merged Min/Max bound the
// union, the merged key universe is complete only if both inputs' were, and
// Distinct degrades to a capped lower bound (distinct sets may overlap, so
// neither sum nor max is exact). Merging per-group entries yields the
// whole-file aggregate the scheduler tier prunes splits with.
func (s *ColStats) Merge(o *ColStats) {
	sVals := s.Nulls < s.Rows // s covers at least one non-null value
	oVals := o.Nulls < o.Rows
	s.Rows += o.Rows
	s.Nulls += o.Nulls
	if o.Distinct > s.Distinct {
		s.Distinct = o.Distinct
	}
	if sVals && oVals {
		// Overlap between the two distinct sets is unknown.
		s.DistinctCapped = true
	} else {
		s.DistinctCapped = s.DistinctCapped || o.DistinctCapped
	}
	switch {
	case !oVals:
		// o contributes no values: bounds, key universe, and filter are
		// unchanged.
	case !sVals:
		// s contributed no values: adopt o's wholesale.
		s.HasMinMax, s.Min, s.Max = o.HasMinMax, o.Min, o.Max
		s.HasKeys, s.KeysCapped = o.HasKeys, o.KeysCapped
		s.Keys = append([]string(nil), o.Keys...)
		s.Bloom = o.Bloom.Clone()
		s.BloomFill = o.BloomFill
		s.Hist = o.Hist // histograms are immutable once built
	default:
		if s.HasMinMax && o.HasMinMax {
			if c, ok := CompareValues(o.Min, s.Min); ok && c < 0 {
				s.Min = o.Min
			}
			if c, ok := CompareValues(o.Max, s.Max); ok && c > 0 {
				s.Max = o.Max
			}
		} else {
			s.HasMinMax, s.Min, s.Max = false, nil, nil
		}
		if s.HasKeys && o.HasKeys {
			s.Keys = mergeSortedKeys(s.Keys, o.Keys)
			s.KeysCapped = s.KeysCapped || o.KeysCapped
		} else if s.HasKeys || o.HasKeys {
			// One side has values but tracked no universe: the union is
			// incomplete, so it can no longer disprove key existence.
			s.Keys = mergeSortedKeys(s.Keys, o.Keys)
			s.HasKeys = true
			s.KeysCapped = true
		}
		// The merged filter must may-contain every byte string either side
		// may-contain: OR when both carry compatible filters, nil (no
		// statistic) when either is missing or the union saturates. This
		// is how per-group filters roll up into the whole-file aggregate
		// that split elision reads.
		s.Bloom = mergeBlooms(s.Bloom, o.Bloom)
		s.BloomFill = s.Bloom.FillFraction()
		// Two histograms over different row sets cannot be merged without
		// resampling (bucket boundaries disagree); degrade to "no
		// histogram" and let estimation fall back to the uniform model.
		s.Hist = nil
	}
}

// mergeSortedKeys unions two sorted string slices into a fresh slice.
func mergeSortedKeys(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Evaluator resolves the current record's values for exact predicate
// evaluation. Beyond plain value access it can answer capability queries a
// storage layer serves cheaper than materialization — today, map-key
// existence from a DCSL window dictionary.
type Evaluator interface {
	// Value resolves a column name to the current record's value. A nil
	// value with a nil error represents SQL NULL.
	Value(column string) (any, error)
	// HasKey decides whether the map column contains key without
	// materializing the map value. answered reports whether the store
	// could decide; when false the caller falls back to Value.
	HasKey(column, key string) (has, answered bool, err error)
}

// Getter adapts a plain column-value function to Evaluator (with no cheap
// capabilities). A nil value with a nil error represents SQL NULL.
type Getter func(column string) (any, error)

// Value implements Evaluator.
func (g Getter) Value(column string) (any, error) { return g(column) }

// HasKey implements Evaluator: a bare Getter never answers, so key tests
// fall back to materializing the map.
func (Getter) HasKey(column, key string) (bool, bool, error) { return false, false, nil }

// StatsFunc resolves a column name to the zone-map statistics of the record
// group under consideration. Returning nil means "no statistics available",
// which pruning treats as MayMatch.
type StatsFunc func(column string) *ColStats

// Predicate is a pushdown filter over records. Implementations are closed
// to this package so that every predicate serializes through String and
// Parse.
type Predicate interface {
	// Eval decides the predicate exactly for one record. Comparisons,
	// prefix, and key tests against a null value are false (no
	// three-valued logic: Not(x) is the strict complement of x).
	Eval(ev Evaluator) (bool, error)
	// VecEval decides the predicate for a whole batch: it returns the
	// subset of in whose rows match, examining exactly the
	// (row, subpredicate) pairs the scalar short-circuit order would, so
	// verdicts and errors agree with per-record Eval. in is not mutated.
	VecEval(src VecSource, in *Selection) (*Selection, error)
	// Prune decides conservatively whether a record group can contain a
	// match, given per-column zone maps. NoMatch is a proof; MayMatch is
	// not a promise.
	Prune(stats StatsFunc) Tri
	// MatchAll reports whether the statistics prove that every record in
	// the group matches. It is the dual Prune needs to handle NOT.
	MatchAll(stats StatsFunc) bool
	// Columns appends the distinct top-level columns the predicate reads,
	// preserving first-appearance order.
	Columns(dst []string) []string
	// String renders the predicate in the expression language accepted by
	// Parse.
	String() string
}

// Op is a comparison operator.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the operator's expression-language spelling.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Builders. Literals may be any Go integer or float type, string, bool, or
// []byte; integers normalize to int64 and floats to float64, and compare
// across the column's native width (an int64 literal matches an int32
// column).

// Cmp returns the comparison predicate "col op lit".
func Cmp(col string, op Op, lit any) Predicate {
	return &cmpPred{col: col, op: op, lit: normLiteral(lit)}
}

// Eq returns "col == lit".
func Eq(col string, lit any) Predicate { return Cmp(col, OpEq, lit) }

// Ne returns "col != lit".
func Ne(col string, lit any) Predicate { return Cmp(col, OpNe, lit) }

// Lt returns "col < lit".
func Lt(col string, lit any) Predicate { return Cmp(col, OpLt, lit) }

// Le returns "col <= lit".
func Le(col string, lit any) Predicate { return Cmp(col, OpLe, lit) }

// Gt returns "col > lit".
func Gt(col string, lit any) Predicate { return Cmp(col, OpGt, lit) }

// Ge returns "col >= lit".
func Ge(col string, lit any) Predicate { return Cmp(col, OpGe, lit) }

// Between returns the inclusive range predicate lo <= col <= hi.
func Between(col string, lo, hi any) Predicate {
	return &rangePred{col: col, lo: normLiteral(lo), hi: normLiteral(hi)}
}

// HasPrefix returns the string-prefix predicate on col.
func HasPrefix(col, prefix string) Predicate {
	return &prefixPred{col: col, prefix: prefix}
}

// KeyExists returns the predicate "map column col contains key".
func KeyExists(col, key string) Predicate {
	return &keyPred{col: col, key: key}
}

// IsNull returns the predicate "col is null".
func IsNull(col string) Predicate { return &nullPred{col: col} }

// NotNull returns the predicate "col is not null".
func NotNull(col string) Predicate { return &nullPred{col: col, negate: true} }

// And returns the conjunction of kids (true when empty).
func And(kids ...Predicate) Predicate {
	if len(kids) == 1 {
		return kids[0]
	}
	return &andPred{kids: kids}
}

// Or returns the disjunction of kids (false when empty).
func Or(kids ...Predicate) Predicate {
	if len(kids) == 1 {
		return kids[0]
	}
	return &orPred{kids: kids}
}

// Not returns the negation of p.
func Not(p Predicate) Predicate { return &notPred{kid: p} }

// normLiteral maps a builder-supplied literal to the canonical comparison
// representation.
func normLiteral(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint:
		return normUint64(uint64(x))
	case uint64:
		return normUint64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// normUint64 keeps unsigned literals comparable: int64 when they fit,
// float64 (approximate) beyond.
func normUint64(x uint64) any {
	if x <= math.MaxInt64 {
		return int64(x)
	}
	return float64(x)
}

// CompareValues totally orders two values when they are comparable:
// booleans, strings, byte slices (and string-vs-bytes), and any mix of
// int32/int64/float64. ok is false for incomparable pairs.
//
// Doubles use a total order with NaN below -Inf (and NaN == NaN), not the
// IEEE partial order: zone-map Min/Max are computed with this same
// ordering, so Eval and Prune stay mutually consistent — and
// deterministic — even for NaN-bearing columns.
func CompareValues(a, b any) (int, bool) {
	switch av := a.(type) {
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, false
		}
		switch {
		case av == bv:
			return 0, true
		case !av:
			return -1, true
		default:
			return 1, true
		}
	case string:
		switch bv := b.(type) {
		case string:
			return strings.Compare(av, bv), true
		case []byte:
			return bytes.Compare([]byte(av), bv), true
		}
		return 0, false
	case []byte:
		switch bv := b.(type) {
		case []byte:
			return bytes.Compare(av, bv), true
		case string:
			return bytes.Compare(av, []byte(bv)), true
		}
		return 0, false
	}
	ai, aInt := asInt(a)
	bi, bInt := asInt(b)
	if aInt && bInt {
		switch {
		case ai < bi:
			return -1, true
		case ai > bi:
			return 1, true
		default:
			return 0, true
		}
	}
	af, aNum := asFloat(a)
	bf, bNum := asFloat(b)
	if aNum && bNum {
		aNaN, bNaN := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case aNaN && bNaN:
			return 0, true
		case aNaN:
			return -1, true
		case bNaN:
			return 1, true
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

func asInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int32:
		return int64(x), true
	case int64:
		return x, true
	}
	return 0, false
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// appendColumn appends col to dst unless already present.
func appendColumn(dst []string, col string) []string {
	for _, c := range dst {
		if c == col {
			return dst
		}
	}
	return append(dst, col)
}

// cmpPred is "col op lit".
type cmpPred struct {
	col string
	op  Op
	lit any
}

func (p *cmpPred) Eval(ev Evaluator) (bool, error) {
	v, err := ev.Value(p.col)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil
	}
	c, ok := CompareValues(v, p.lit)
	if !ok {
		return false, fmt.Errorf("scan: cannot compare column %q value %T with literal %T", p.col, v, p.lit)
	}
	return opHolds(p.op, c), nil
}

func opHolds(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func (p *cmpPred) Prune(stats StatsFunc) Tri {
	st := stats(p.col)
	if st == nil {
		return MayMatch
	}
	if st.Nulls == st.Rows {
		return NoMatch // comparisons never match null
	}
	if !st.HasMinMax {
		return MayMatch
	}
	// Equality first probes the Bloom filter: on unsorted high-cardinality
	// string columns [Min, Max] spans the whole domain and proves nothing,
	// but a negative membership probe is a proof of absence. Gating on
	// HasMinMax keeps the probe sound: an ordered column's filter holds
	// values (a map column's holds keys, and map columns never set
	// HasMinMax), and MayContainValue refutes only string/bytes literals —
	// the spellings the writer inserted.
	if p.op == OpEq && st.Bloom != nil && !st.Bloom.MayContainValue(p.lit) {
		return NoMatch
	}
	cMin, okMin := CompareValues(st.Min, p.lit)
	cMax, okMax := CompareValues(st.Max, p.lit)
	if !okMin || !okMax {
		return MayMatch
	}
	switch p.op {
	case OpEq:
		if cMin > 0 || cMax < 0 {
			return NoMatch
		}
	case OpNe:
		// Only a constant group equal to the literal has no mismatches.
		if cMin == 0 && cMax == 0 && st.Nulls == 0 {
			return NoMatch
		}
	case OpLt:
		if cMin >= 0 {
			return NoMatch
		}
	case OpLe:
		if cMin > 0 {
			return NoMatch
		}
	case OpGt:
		if cMax <= 0 {
			return NoMatch
		}
	case OpGe:
		if cMax < 0 {
			return NoMatch
		}
	}
	return MayMatch
}

func (p *cmpPred) MatchAll(stats StatsFunc) bool {
	st := stats(p.col)
	if st == nil || st.Nulls != 0 || !st.HasMinMax {
		return false
	}
	cMin, okMin := CompareValues(st.Min, p.lit)
	cMax, okMax := CompareValues(st.Max, p.lit)
	if !okMin || !okMax {
		return false
	}
	switch p.op {
	case OpEq:
		return cMin == 0 && cMax == 0
	case OpNe:
		return cMin > 0 || cMax < 0
	case OpLt:
		return cMax < 0
	case OpLe:
		return cMax <= 0
	case OpGt:
		return cMin > 0
	default:
		return cMin >= 0
	}
}

func (p *cmpPred) Columns(dst []string) []string { return appendColumn(dst, p.col) }

func (p *cmpPred) String() string {
	return fmt.Sprintf("%s %s %s", p.col, p.op, literalString(p.lit))
}

// rangePred is "lo <= col <= hi".
type rangePred struct {
	col    string
	lo, hi any
}

func (p *rangePred) Eval(ev Evaluator) (bool, error) {
	v, err := ev.Value(p.col)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil
	}
	cLo, okLo := CompareValues(v, p.lo)
	cHi, okHi := CompareValues(v, p.hi)
	if !okLo || !okHi {
		return false, fmt.Errorf("scan: cannot compare column %q value %T with range [%T, %T]", p.col, v, p.lo, p.hi)
	}
	return cLo >= 0 && cHi <= 0, nil
}

func (p *rangePred) Prune(stats StatsFunc) Tri {
	st := stats(p.col)
	if st == nil {
		return MayMatch
	}
	if st.Nulls == st.Rows {
		return NoMatch
	}
	if !st.HasMinMax {
		return MayMatch
	}
	// Matches are possible only if [Min, Max] intersects [lo, hi].
	cMaxLo, ok1 := CompareValues(st.Max, p.lo)
	cMinHi, ok2 := CompareValues(st.Min, p.hi)
	if !ok1 || !ok2 {
		return MayMatch
	}
	if cMaxLo < 0 || cMinHi > 0 {
		return NoMatch
	}
	return MayMatch
}

func (p *rangePred) MatchAll(stats StatsFunc) bool {
	st := stats(p.col)
	if st == nil || st.Nulls != 0 || !st.HasMinMax {
		return false
	}
	cMinLo, ok1 := CompareValues(st.Min, p.lo)
	cMaxHi, ok2 := CompareValues(st.Max, p.hi)
	return ok1 && ok2 && cMinLo >= 0 && cMaxHi <= 0
}

func (p *rangePred) Columns(dst []string) []string { return appendColumn(dst, p.col) }

func (p *rangePred) String() string {
	return fmt.Sprintf("between(%s, %s, %s)", p.col, literalString(p.lo), literalString(p.hi))
}

// prefixPred is "string column col starts with prefix".
type prefixPred struct {
	col    string
	prefix string
}

func (p *prefixPred) Eval(ev Evaluator) (bool, error) {
	v, err := ev.Value(p.col)
	if err != nil {
		return false, err
	}
	switch s := v.(type) {
	case nil:
		return false, nil
	case string:
		return strings.HasPrefix(s, p.prefix), nil
	case []byte:
		return bytes.HasPrefix(s, []byte(p.prefix)), nil
	}
	return false, fmt.Errorf("scan: prefix on non-string column %q (%T)", p.col, v)
}

// prefixUpper returns the smallest string greater than every string with
// the given prefix, when one exists.
func prefixUpper(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

func (p *prefixPred) Prune(stats StatsFunc) Tri {
	st := stats(p.col)
	if st == nil {
		return MayMatch
	}
	if st.Nulls == st.Rows {
		return NoMatch
	}
	if !st.HasMinMax {
		return MayMatch
	}
	// Strings with the prefix occupy [prefix, prefixUpper). Outside that
	// range no match is possible.
	if cMax, ok := CompareValues(st.Max, p.prefix); ok && cMax < 0 {
		return NoMatch
	}
	if up, bounded := prefixUpper(p.prefix); bounded {
		if cMin, ok := CompareValues(st.Min, up); ok && cMin >= 0 {
			return NoMatch
		}
	}
	return MayMatch
}

func (p *prefixPred) MatchAll(stats StatsFunc) bool {
	st := stats(p.col)
	if st == nil || st.Nulls != 0 || !st.HasMinMax {
		return false
	}
	// If Min and Max both carry the prefix, everything between them does.
	minS, okMin := st.Min.(string)
	maxS, okMax := st.Max.(string)
	return okMin && okMax && strings.HasPrefix(minS, p.prefix) && strings.HasPrefix(maxS, p.prefix)
}

func (p *prefixPred) Columns(dst []string) []string { return appendColumn(dst, p.col) }

func (p *prefixPred) String() string {
	return fmt.Sprintf("prefix(%s, %s)", p.col, strconv.Quote(p.prefix))
}

// nullPred is "col is (not) null".
type nullPred struct {
	col    string
	negate bool
}

func (p *nullPred) Eval(ev Evaluator) (bool, error) {
	v, err := ev.Value(p.col)
	if err != nil {
		return false, err
	}
	return (v == nil) != p.negate, nil
}

func (p *nullPred) Prune(stats StatsFunc) Tri {
	st := stats(p.col)
	if st == nil {
		return MayMatch
	}
	if !p.negate && st.Nulls == 0 {
		return NoMatch
	}
	if p.negate && st.Nulls == st.Rows {
		return NoMatch
	}
	return MayMatch
}

func (p *nullPred) MatchAll(stats StatsFunc) bool {
	st := stats(p.col)
	if st == nil {
		return false
	}
	if p.negate {
		return st.Nulls == 0
	}
	return st.Nulls == st.Rows
}

func (p *nullPred) Columns(dst []string) []string { return appendColumn(dst, p.col) }

func (p *nullPred) String() string {
	if p.negate {
		return fmt.Sprintf("notnull(%s)", p.col)
	}
	return fmt.Sprintf("isnull(%s)", p.col)
}

// keyPred is "map column col has key".
type keyPred struct {
	col string
	key string
}

func (p *keyPred) Eval(ev Evaluator) (bool, error) {
	// A store that can probe key existence directly (the DCSL window
	// dictionary: one lookup decides a whole window's key universe, and an
	// id walk decides one record) answers without building the map.
	if has, answered, err := ev.HasKey(p.col, p.key); err != nil {
		return false, err
	} else if answered {
		return has, nil
	}
	v, err := ev.Value(p.col)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return false, fmt.Errorf("scan: exists on non-map column %q (%T)", p.col, v)
	}
	_, has := m[p.key]
	return has, nil
}

func (p *keyPred) Prune(stats StatsFunc) Tri {
	st := stats(p.col)
	if st == nil {
		return MayMatch
	}
	if st.Nulls == st.Rows {
		return NoMatch
	}
	// A map column's Bloom filter covers every key observed in the group —
	// including keys the capped universe dropped — so a negative probe is a
	// proof even when the key list cannot be. Gating on HasKeys keeps the
	// probe off value filters: only map columns set HasKeys, and a map
	// column's filter holds keys.
	if st.HasKeys && st.Bloom != nil && !st.Bloom.MayContainString(p.key) {
		return NoMatch
	}
	// The stats footer stores the group's key universe; a key outside a
	// complete universe cannot exist in any record of the group.
	if st.HasKeys && !st.KeysCapped && !st.HasKey(p.key) {
		return NoMatch
	}
	return MayMatch
}

func (p *keyPred) MatchAll(StatsFunc) bool {
	// Keys are a union over the group, so presence proves nothing about
	// individual records.
	return false
}

func (p *keyPred) Columns(dst []string) []string { return appendColumn(dst, p.col) }

func (p *keyPred) String() string {
	return fmt.Sprintf("exists(%s, %s)", p.col, strconv.Quote(p.key))
}

// andPred is the conjunction of its children.
type andPred struct {
	kids []Predicate
}

func (p *andPred) Eval(ev Evaluator) (bool, error) {
	for _, k := range p.kids {
		ok, err := k.Eval(ev)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (p *andPred) Prune(stats StatsFunc) Tri {
	for _, k := range p.kids {
		if k.Prune(stats) == NoMatch {
			return NoMatch
		}
	}
	return MayMatch
}

func (p *andPred) MatchAll(stats StatsFunc) bool {
	for _, k := range p.kids {
		if !k.MatchAll(stats) {
			return false
		}
	}
	return true
}

func (p *andPred) Columns(dst []string) []string {
	for _, k := range p.kids {
		dst = k.Columns(dst)
	}
	return dst
}

func (p *andPred) String() string { return renderJoin(p.kids, "&&", "true") }

// orPred is the disjunction of its children.
type orPred struct {
	kids []Predicate
}

func (p *orPred) Eval(ev Evaluator) (bool, error) {
	for _, k := range p.kids {
		ok, err := k.Eval(ev)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

func (p *orPred) Prune(stats StatsFunc) Tri {
	for _, k := range p.kids {
		if k.Prune(stats) == MayMatch {
			return MayMatch
		}
	}
	// Every child pruned; the empty Or is constant false. Either way the
	// group cannot match.
	return NoMatch
}

func (p *orPred) MatchAll(stats StatsFunc) bool {
	for _, k := range p.kids {
		if k.MatchAll(stats) {
			return true
		}
	}
	return false
}

func (p *orPred) Columns(dst []string) []string {
	for _, k := range p.kids {
		dst = k.Columns(dst)
	}
	return dst
}

func (p *orPred) String() string { return renderJoin(p.kids, "||", "false") }

// notPred negates its child.
type notPred struct {
	kid Predicate
}

func (p *notPred) Eval(ev Evaluator) (bool, error) {
	ok, err := p.kid.Eval(ev)
	return !ok, err
}

func (p *notPred) Prune(stats StatsFunc) Tri {
	// No record matches !kid exactly when every record matches kid.
	if p.kid.MatchAll(stats) {
		return NoMatch
	}
	return MayMatch
}

func (p *notPred) MatchAll(stats StatsFunc) bool {
	return p.kid.Prune(stats) == NoMatch
}

func (p *notPred) Columns(dst []string) []string { return p.kid.Columns(dst) }

func (p *notPred) String() string {
	if _, composite := p.kid.(*andPred); composite {
		return "!" + p.kid.String()
	}
	if _, composite := p.kid.(*orPred); composite {
		return "!" + p.kid.String()
	}
	return "!(" + p.kid.String() + ")"
}

func renderJoin(kids []Predicate, op, empty string) string {
	if len(kids) == 0 {
		return empty
	}
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

// literalString renders a literal in the expression language.
func literalString(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		// Non-finite floats get keyword spellings the parser accepts.
		switch {
		case math.IsNaN(x):
			return "nan"
		case math.IsInf(x, 1):
			return "inf"
		case math.IsInf(x, -1):
			return "-inf"
		}
		s := strconv.FormatFloat(x, 'g', -1, 64)
		// Keep floats distinguishable from ints on re-parse.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case string:
		return strconv.Quote(x)
	case bool:
		return strconv.FormatBool(x)
	case []byte:
		return strconv.Quote(string(x))
	default:
		return fmt.Sprintf("%v", x)
	}
}
