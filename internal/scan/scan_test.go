package scan

import (
	"math"
	"strings"
	"testing"
)

// recGetter adapts a map to a Getter.
func recGetter(m map[string]any) Getter {
	return func(col string) (any, error) { return m[col], nil }
}

func TestEvalBasics(t *testing.T) {
	rec := recGetter(map[string]any{
		"i":   int32(42),
		"l":   int64(-7),
		"d":   3.5,
		"s":   "http://www.ibm.com/jp/page",
		"b":   true,
		"m":   map[string]any{"lang": "ja", "rank": int32(3)},
		"nil": nil,
	})
	cases := []struct {
		pred Predicate
		want bool
	}{
		{Eq("i", 42), true},
		{Eq("i", 41), false},
		{Ne("i", 41), true},
		{Lt("l", 0), true},
		{Le("l", -7), true},
		{Gt("d", 3), true},
		{Ge("d", 3.5), true},
		{Gt("d", 3.5), false},
		{Eq("b", true), true},
		{Between("i", 40, 45), true},
		{Between("i", 43, 45), false},
		{HasPrefix("s", "http://www.ibm.com"), true},
		{HasPrefix("s", "https://"), false},
		{KeyExists("m", "lang"), true},
		{KeyExists("m", "missing"), false},
		{IsNull("nil"), true},
		{IsNull("i"), false},
		{NotNull("i"), true},
		{Eq("nil", 1), false}, // null fails comparisons
		{And(Eq("i", 42), Gt("d", 3)), true},
		{And(Eq("i", 42), Gt("d", 4)), false},
		{Or(Eq("i", 0), HasPrefix("s", "http")), true},
		{Not(Eq("i", 42)), false},
		{And(), true},
		{Or(), false},
	}
	for _, c := range cases {
		got, err := c.pred.Eval(rec)
		if err != nil {
			t.Errorf("%s: %v", c.pred, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestEvalTypeMismatch(t *testing.T) {
	rec := recGetter(map[string]any{"s": "x", "m": map[string]any{}})
	if _, err := Eq("s", 5).Eval(rec); err == nil {
		t.Error("comparing string column with int literal should error")
	}
	if _, err := HasPrefix("m", "x").Eval(rec); err == nil {
		t.Error("prefix on map column should error")
	}
	if _, err := KeyExists("s", "k").Eval(rec); err == nil {
		t.Error("exists on string column should error")
	}
}

func statsFor(m map[string]*ColStats) StatsFunc {
	return func(col string) *ColStats { return m[col] }
}

func TestPruneCmp(t *testing.T) {
	st := statsFor(map[string]*ColStats{
		"i": {Rows: 10, HasMinMax: true, Min: int32(100), Max: int32(200)},
	})
	cases := []struct {
		pred Predicate
		want Tri
	}{
		{Eq("i", 150), MayMatch},
		{Eq("i", 99), NoMatch},
		{Eq("i", 201), NoMatch},
		{Lt("i", 100), NoMatch},
		{Lt("i", 101), MayMatch},
		{Le("i", 99), NoMatch},
		{Le("i", 100), MayMatch},
		{Gt("i", 200), NoMatch},
		{Gt("i", 199), MayMatch},
		{Ge("i", 201), NoMatch},
		{Between("i", 300, 400), NoMatch},
		{Between("i", 0, 99), NoMatch},
		{Between("i", 150, 160), MayMatch},
		{Ne("i", 150), MayMatch},
		{IsNull("i"), NoMatch},
		{NotNull("i"), MayMatch},
		// Unknown column: no stats, cannot prune.
		{Eq("x", 1), MayMatch},
	}
	for _, c := range cases {
		if got := c.pred.Prune(st); got != c.want {
			t.Errorf("Prune(%s) = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestPruneNotUsesMatchAll(t *testing.T) {
	// Every value in [100, 200] is > 50, so !(i > 50) prunes.
	st := statsFor(map[string]*ColStats{
		"i": {Rows: 10, HasMinMax: true, Min: int32(100), Max: int32(200)},
	})
	if got := Not(Gt("i", 50)).Prune(st); got != NoMatch {
		t.Errorf("Not(i > 50).Prune = %v, want NoMatch", got)
	}
	if got := Not(Gt("i", 150)).Prune(st); got != MayMatch {
		t.Errorf("Not(i > 150).Prune = %v, want MayMatch", got)
	}
	// Double negation restores pruning of the inner predicate.
	if got := Not(Not(Gt("i", 200))).Prune(st); got != NoMatch {
		t.Errorf("Not(Not(i > 200)).Prune = %v, want NoMatch", got)
	}
}

func TestPruneConstantGroupNe(t *testing.T) {
	st := statsFor(map[string]*ColStats{
		"i": {Rows: 10, HasMinMax: true, Min: int32(7), Max: int32(7)},
	})
	if got := Ne("i", 7).Prune(st); got != NoMatch {
		t.Errorf("Ne on constant group = %v, want NoMatch", got)
	}
}

func TestPrunePrefix(t *testing.T) {
	st := statsFor(map[string]*ColStats{
		"s": {Rows: 10, HasMinMax: true, Min: "http://a.com", Max: "http://z.com"},
	})
	if got := HasPrefix("s", "ftp://").Prune(st); got != NoMatch {
		t.Errorf("prefix below range = %v, want NoMatch", got)
	}
	if got := HasPrefix("s", "https://").Prune(st); got != NoMatch {
		t.Errorf("prefix above range = %v, want NoMatch", got)
	}
	if got := HasPrefix("s", "http://m").Prune(st); got != MayMatch {
		t.Errorf("prefix inside range = %v, want MayMatch", got)
	}
	// All values share the prefix: Not(prefix) prunes.
	if got := Not(HasPrefix("s", "http://")).Prune(st); got != NoMatch {
		t.Errorf("Not(shared prefix) = %v, want NoMatch", got)
	}
}

func TestPruneKeys(t *testing.T) {
	complete := statsFor(map[string]*ColStats{
		"m": {Rows: 10, HasKeys: true, Keys: []string{"alpha", "beta"}},
	})
	capped := statsFor(map[string]*ColStats{
		"m": {Rows: 10, HasKeys: true, Keys: []string{"alpha"}, KeysCapped: true},
	})
	if got := KeyExists("m", "gamma").Prune(complete); got != NoMatch {
		t.Errorf("missing key with complete universe = %v, want NoMatch", got)
	}
	if got := KeyExists("m", "alpha").Prune(complete); got != MayMatch {
		t.Errorf("present key = %v, want MayMatch", got)
	}
	if got := KeyExists("m", "gamma").Prune(capped); got != MayMatch {
		t.Errorf("missing key with capped universe = %v, want MayMatch", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	preds := []Predicate{
		Eq("int0", 42),
		Ne("str0", "abc"),
		Lt("d", -1.5),
		Ge("t", 1234567),
		Between("int0", 10, 99),
		HasPrefix("url", `http://"quoted"`),
		KeyExists("metadata", "content-type"),
		IsNull("x"),
		NotNull("x"),
		And(Eq("a", 1), Or(Gt("b", 2.5), Not(HasPrefix("c", "p"))), Eq("d", true)),
		Not(And(Eq("a", 1), Eq("b", 2))),
		And(),
		Or(),
		// Non-finite floats round-trip via keyword spellings.
		Gt("d", math.Inf(1)),
		Le("d", math.Inf(-1)),
		Ne("d", math.NaN()),
	}
	for _, p := range preds {
		src := p.String()
		back, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if back.String() != src {
			t.Errorf("round trip: %q -> %q", src, back.String())
		}
	}
}

func TestParseExpressions(t *testing.T) {
	good := []string{
		"int0 <= 100",
		"a == 1 && b == 2 || c == 3",
		"!(a == 1) && prefix(url, \"http://\")",
		"between(x, -5, 5) || exists(m, \"key\")",
		"isnull(a)",
		"notnull(a) && a > 1e3",
		" a  ==  1 ",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"a ==",
		"a = 1",
		"(a == 1",
		"a == 1 &&",
		"prefix(url)",
		"exists(m, 5)",
		"a == 1 extra",
		"between(x, 1)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||.
	p := MustParse("a == 1 || b == 2 && c == 3")
	want := Or(Eq("a", 1), And(Eq("b", 2), Eq("c", 3)))
	if p.String() != want.String() {
		t.Errorf("precedence: got %s, want %s", p, want)
	}
}

func TestColumns(t *testing.T) {
	p := And(Eq("a", 1), Or(Gt("b", 2), Eq("a", 3)), Not(KeyExists("c", "k")))
	got := p.Columns(nil)
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("Columns = %v, want [a b c]", got)
	}
}

func TestNaNTotalOrder(t *testing.T) {
	nan := math.NaN()
	rec := recGetter(map[string]any{"d": nan})
	// NaN sorts below every number (total order), so == never matches a
	// real literal and < matches any of them — deterministically.
	for _, c := range []struct {
		pred Predicate
		want bool
	}{
		{Eq("d", 5.0), false},
		{Ne("d", 5.0), true},
		{Lt("d", 5.0), true},
		{Gt("d", 5.0), false},
		{Eq("d", nan), true},
	} {
		got, err := c.pred.Eval(rec)
		if err != nil || got != c.want {
			t.Errorf("%s over NaN = (%v, %v), want %v", c.pred, got, err, c.want)
		}
	}
	// An all-NaN group must not let MatchAll prove equality with a real
	// literal (which would wrongly prune its negation).
	st := statsFor(map[string]*ColStats{
		"d": {Rows: 3, HasMinMax: true, Min: nan, Max: nan},
	})
	if Not(Eq("d", 5.0)).Prune(st) == NoMatch {
		t.Error("Not(d == 5) pruned an all-NaN group")
	}
	if got := Eq("d", nan).Prune(st); got != MayMatch {
		t.Errorf("Eq(NaN) over NaN group = %v, want MayMatch", got)
	}
}

func TestUnsignedLiterals(t *testing.T) {
	rec := recGetter(map[string]any{"i": int32(5), "l": int64(9)})
	for _, c := range []struct {
		pred Predicate
		want bool
	}{
		{Eq("i", uint(5)), true},
		{Eq("l", uint64(9)), true},
		{Lt("l", uint64(math.MaxUint64)), true},
	} {
		got, err := c.pred.Eval(rec)
		if err != nil || got != c.want {
			t.Errorf("%s = (%v, %v), want %v", c.pred, got, err, c.want)
		}
	}
}

func TestCrossTypeNumericCompare(t *testing.T) {
	rec := recGetter(map[string]any{"i": int32(5), "l": int64(5), "d": 5.0})
	for _, p := range []Predicate{Eq("i", 5), Eq("l", 5), Eq("d", 5), Eq("d", 5.0), Ge("i", 4.5)} {
		ok, err := p.Eval(rec)
		if err != nil || !ok {
			t.Errorf("%s = (%v, %v), want true", p, ok, err)
		}
	}
}

func TestColStatsMerge(t *testing.T) {
	// Two value-bearing groups: bounds widen, keys union, distinct becomes
	// a capped lower bound.
	a := ColStats{Rows: 10, Distinct: 4, HasMinMax: true, Min: int64(5), Max: int64(20),
		HasKeys: true, Keys: []string{"a", "c"}}
	b := ColStats{Rows: 6, Nulls: 1, Distinct: 6, HasMinMax: true, Min: int64(-3), Max: int64(7),
		HasKeys: true, Keys: []string{"b", "c"}}
	m := a // copy
	m.Merge(&b)
	if m.Rows != 16 || m.Nulls != 1 {
		t.Errorf("rows/nulls = %d/%d, want 16/1", m.Rows, m.Nulls)
	}
	if !m.HasMinMax || m.Min != int64(-3) || m.Max != int64(20) {
		t.Errorf("bounds = %v/%v, want -3/20", m.Min, m.Max)
	}
	if m.Distinct != 6 || !m.DistinctCapped {
		t.Errorf("distinct = %d capped=%v, want 6 capped", m.Distinct, m.DistinctCapped)
	}
	if !m.HasKeys || m.KeysCapped {
		t.Fatalf("keys = %+v, want complete union", m)
	}
	for _, k := range []string{"a", "b", "c"} {
		if !m.HasKey(k) {
			t.Errorf("merged universe misses %q", k)
		}
	}
	if m.HasKey("d") {
		t.Error("merged universe invents a key")
	}

	// Merging into the zero value adopts the group wholesale (the
	// file-aggregate bootstrap case).
	var z ColStats
	z.Merge(&a)
	if z.Rows != 10 || !z.HasMinMax || z.Min != int64(5) || !z.HasKeys || z.HasKey("b") {
		t.Errorf("zero-merge = %+v, want a copy of the group", z)
	}

	// An all-null group contributes rows but neither bounds nor keys.
	nulls := ColStats{Rows: 5, Nulls: 5}
	m2 := a
	m2.Merge(&nulls)
	if m2.Rows != 15 || m2.Nulls != 5 || !m2.HasMinMax || m2.Min != int64(5) || !m2.HasKeys {
		t.Errorf("null-merge = %+v, want unchanged bounds over 15 rows", m2)
	}

	// A value-bearing group without bounds (complex type) poisons bounds.
	complexG := ColStats{Rows: 3, DistinctCapped: true}
	m3 := a
	m3.Merge(&complexG)
	if m3.HasMinMax {
		t.Error("bounds survived a boundless value-bearing group")
	}
	// ... and a capped key universe propagates the cap.
	capped := ColStats{Rows: 3, HasKeys: true, Keys: []string{"z"}, KeysCapped: true}
	m4 := a
	m4.Merge(&capped)
	if !m4.HasKeys || !m4.KeysCapped || !m4.HasKey("z") {
		t.Errorf("capped-merge = %+v, want capped union containing z", m4)
	}
}
