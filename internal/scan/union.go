package scan

// Shared-scan predicate union. When several co-submitted jobs scan the same
// split-directories, the engine drives one cursor set for all of them: the
// shared cursors push down the OR of the jobs' predicates (so group and
// file pruning fire only where *no* job can match), and each job keeps its
// own predicate as a residual that demultiplexes the shared record stream.
// Evaluation of identical residuals is shared through EvalGroups, so N jobs
// asking the same question cost one answer per record.

// Union combines the predicates of co-scheduled jobs into one shared scan.
type Union struct {
	// Shared is the predicate the shared cursor set pushes down: the OR of
	// the members' distinct predicates. It is nil when any member scans
	// unfiltered — the shared scan must then surface every record.
	Shared Predicate
	// Residuals holds each member's demultiplexing predicate in member
	// order (the member's original predicate). A nil residual accepts every
	// record the shared scan surfaces.
	Residuals []Predicate
	// Columns is the union of the members' filter columns, in
	// first-appearance order across members.
	Columns []string
	// EvalGroups maps each member to an evaluation-sharing group: members
	// whose residuals render identically share one per-record verdict.
	// -1 marks members with nil residuals.
	EvalGroups []int
	// NumGroups is the number of distinct evaluation groups.
	NumGroups int
}

// NewUnion builds the union of per-member predicates (nil entries mean the
// member scans unfiltered).
func NewUnion(preds []Predicate) *Union {
	u := &Union{
		Residuals:  append([]Predicate(nil), preds...),
		EvalGroups: make([]int, len(preds)),
	}
	unfiltered := false
	var distinct []Predicate
	groupOf := make(map[string]int)
	for i, p := range preds {
		if p == nil {
			unfiltered = true
			u.EvalGroups[i] = -1
			continue
		}
		u.Columns = p.Columns(u.Columns)
		key := p.String()
		g, ok := groupOf[key]
		if !ok {
			g = len(distinct)
			groupOf[key] = g
			distinct = append(distinct, p)
		}
		u.EvalGroups[i] = g
	}
	u.NumGroups = len(distinct)
	if !unfiltered && len(distinct) > 0 {
		u.Shared = Or(distinct...)
	}
	return u
}
