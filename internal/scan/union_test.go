package scan

import "testing"

func TestUnionSharedIsOrOfDistinct(t *testing.T) {
	a := Le("int0", 100)
	b := Gt("str0", "m")
	u := NewUnion([]Predicate{a, b, Le("int0", 100)})
	if u.Shared == nil {
		t.Fatal("shared predicate is nil")
	}
	want := Or(a, b).String()
	if got := u.Shared.String(); got != want {
		t.Fatalf("shared = %s, want %s", got, want)
	}
	if u.NumGroups != 2 {
		t.Fatalf("NumGroups = %d, want 2", u.NumGroups)
	}
	if u.EvalGroups[0] != u.EvalGroups[2] {
		t.Fatalf("identical predicates got distinct eval groups %v", u.EvalGroups)
	}
	if u.EvalGroups[0] == u.EvalGroups[1] {
		t.Fatalf("distinct predicates share eval group %v", u.EvalGroups)
	}
	wantCols := []string{"int0", "str0"}
	if len(u.Columns) != len(wantCols) {
		t.Fatalf("Columns = %v, want %v", u.Columns, wantCols)
	}
	for i, c := range wantCols {
		if u.Columns[i] != c {
			t.Fatalf("Columns = %v, want %v", u.Columns, wantCols)
		}
	}
}

func TestUnionSingleMemberKeepsPredicate(t *testing.T) {
	p := Between("int0", 1, 10)
	u := NewUnion([]Predicate{p})
	if u.Shared != p {
		t.Fatalf("single-member shared = %v, want the member's own predicate", u.Shared)
	}
	if u.Residuals[0] != p {
		t.Fatal("residual is not the member predicate")
	}
}

func TestUnionUnfilteredMemberDisablesPushdown(t *testing.T) {
	u := NewUnion([]Predicate{Le("int0", 100), nil})
	if u.Shared != nil {
		t.Fatalf("shared = %v with an unfiltered member, want nil", u.Shared)
	}
	if u.EvalGroups[1] != -1 {
		t.Fatalf("unfiltered member eval group = %d, want -1", u.EvalGroups[1])
	}
	if u.Residuals[0] == nil {
		t.Fatal("filtered member lost its residual")
	}
}

func TestEstimateFraction(t *testing.T) {
	stats := func(col string) *ColStats {
		switch col {
		case "x": // uniform [0, 100], no nulls
			return &ColStats{Rows: 1000, HasMinMax: true, Min: int64(0), Max: int64(100), Distinct: 64, DistinctCapped: true}
		case "n": // half null
			return &ColStats{Rows: 1000, Nulls: 500}
		}
		return nil
	}
	cases := []struct {
		pred   Predicate
		lo, hi float64
	}{
		{Le("x", int64(50)), 0.4, 0.6},
		{Gt("x", int64(75)), 0.15, 0.35},
		{Between("x", int64(25), int64(75)), 0.4, 0.6},
		{Le("x", int64(200)), 1, 1},  // MatchAll: bounds prove every row matches
		{Gt("x", int64(200)), 0, 0},  // Prune: bounds prove no row matches
		{Eq("x", int64(7)), 0, 0.05}, // 1/Distinct
		{IsNull("n"), 0.5, 0.5},
		{NotNull("n"), 0.5, 0.5},
		{And(Le("x", int64(50)), Gt("x", int64(25))), 0.05, 0.45},
		{Or(Le("x", int64(25)), Gt("x", int64(75))), 0.3, 0.7},
		{nil, 1, 1},
	}
	for _, c := range cases {
		f := EstimateFraction(c.pred, stats)
		name := "nil"
		if c.pred != nil {
			name = c.pred.String()
		}
		if f < c.lo || f > c.hi {
			t.Errorf("EstimateFraction(%s) = %.3f, want in [%.2f, %.2f]", name, f, c.lo, c.hi)
		}
	}
}

func TestEstimateRowsScales(t *testing.T) {
	stats := func(string) *ColStats {
		return &ColStats{Rows: 100, HasMinMax: true, Min: int64(0), Max: int64(100)}
	}
	rows := EstimateRows(Le("x", int64(10)), stats, 10000)
	if rows < 500 || rows > 2000 {
		t.Fatalf("EstimateRows = %.0f, want ~1000", rows)
	}
}
