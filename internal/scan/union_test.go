package scan

import (
	"fmt"
	"math"
	"testing"
)

func TestUnionSharedIsOrOfDistinct(t *testing.T) {
	a := Le("int0", 100)
	b := Gt("str0", "m")
	u := NewUnion([]Predicate{a, b, Le("int0", 100)})
	if u.Shared == nil {
		t.Fatal("shared predicate is nil")
	}
	want := Or(a, b).String()
	if got := u.Shared.String(); got != want {
		t.Fatalf("shared = %s, want %s", got, want)
	}
	if u.NumGroups != 2 {
		t.Fatalf("NumGroups = %d, want 2", u.NumGroups)
	}
	if u.EvalGroups[0] != u.EvalGroups[2] {
		t.Fatalf("identical predicates got distinct eval groups %v", u.EvalGroups)
	}
	if u.EvalGroups[0] == u.EvalGroups[1] {
		t.Fatalf("distinct predicates share eval group %v", u.EvalGroups)
	}
	wantCols := []string{"int0", "str0"}
	if len(u.Columns) != len(wantCols) {
		t.Fatalf("Columns = %v, want %v", u.Columns, wantCols)
	}
	for i, c := range wantCols {
		if u.Columns[i] != c {
			t.Fatalf("Columns = %v, want %v", u.Columns, wantCols)
		}
	}
}

func TestUnionSingleMemberKeepsPredicate(t *testing.T) {
	p := Between("int0", 1, 10)
	u := NewUnion([]Predicate{p})
	if u.Shared != p {
		t.Fatalf("single-member shared = %v, want the member's own predicate", u.Shared)
	}
	if u.Residuals[0] != p {
		t.Fatal("residual is not the member predicate")
	}
}

func TestUnionUnfilteredMemberDisablesPushdown(t *testing.T) {
	u := NewUnion([]Predicate{Le("int0", 100), nil})
	if u.Shared != nil {
		t.Fatalf("shared = %v with an unfiltered member, want nil", u.Shared)
	}
	if u.EvalGroups[1] != -1 {
		t.Fatalf("unfiltered member eval group = %d, want -1", u.EvalGroups[1])
	}
	if u.Residuals[0] == nil {
		t.Fatal("filtered member lost its residual")
	}
}

func TestEstimateFraction(t *testing.T) {
	stats := func(col string) *ColStats {
		switch col {
		case "x": // uniform [0, 100], no nulls
			return &ColStats{Rows: 1000, HasMinMax: true, Min: int64(0), Max: int64(100), Distinct: 64, DistinctCapped: true}
		case "n": // half null
			return &ColStats{Rows: 1000, Nulls: 500}
		}
		return nil
	}
	cases := []struct {
		pred   Predicate
		lo, hi float64
	}{
		{Le("x", int64(50)), 0.4, 0.6},
		{Gt("x", int64(75)), 0.15, 0.35},
		{Between("x", int64(25), int64(75)), 0.4, 0.6},
		{Le("x", int64(200)), 1, 1},  // MatchAll: bounds prove every row matches
		{Gt("x", int64(200)), 0, 0},  // Prune: bounds prove no row matches
		{Eq("x", int64(7)), 0, 0.05}, // 1/Distinct
		{IsNull("n"), 0.5, 0.5},
		{NotNull("n"), 0.5, 0.5},
		{And(Le("x", int64(50)), Gt("x", int64(25))), 0.05, 0.45},
		{Or(Le("x", int64(25)), Gt("x", int64(75))), 0.3, 0.7},
		{nil, 1, 1},
	}
	for _, c := range cases {
		f := EstimateFraction(c.pred, stats)
		name := "nil"
		if c.pred != nil {
			name = c.pred.String()
		}
		if f < c.lo || f > c.hi {
			t.Errorf("EstimateFraction(%s) = %.3f, want in [%.2f, %.2f]", name, f, c.lo, c.hi)
		}
	}
}

// TestEstimateEqZeroDistinct: legacy aggregates (CFST, minimal CFS2) carry
// no distinct count, so the 1/Distinct uniform guess must be guarded — the
// estimate falls back to defaultEqFraction and never divides by zero,
// including on the bloom-positive path where the guess is then weighted by
// filter confidence.
func TestEstimateEqZeroDistinct(t *testing.T) {
	b := NewBloomSized(10, 1<<12)
	for i := 0; i < 10; i++ {
		b.AddHash(BloomHashString(fmt.Sprintf("k-%d", i)))
	}
	cases := []struct {
		name string
		st   *ColStats
	}{
		{"no bloom", &ColStats{Rows: 1000}},
		{"bloom, counted fill", &ColStats{Rows: 1000, HasMinMax: true, Min: "a", Max: "z", Bloom: b}},
		{"bloom, recorded fill", &ColStats{Rows: 1000, HasMinMax: true, Min: "a", Max: "z", Bloom: b, BloomFill: 0.05}},
	}
	for _, c := range cases {
		stats := func(string) *ColStats { return c.st }
		f := EstimateFraction(Eq("s", "k-3"), stats)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s: EstimateFraction = %v", c.name, f)
		}
		if f <= 0 || f > defaultEqFraction {
			t.Errorf("%s: EstimateFraction = %v, want in (0, %v]", c.name, f, defaultEqFraction)
		}
	}
}

// TestEstimateEqBloomConfidence: a bloom-negative equality estimates to an
// exact zero (pruning consistency), and a positive one is discounted by the
// filter's recorded fill — a saturated filter's answer is worth less than a
// crisp one's.
func TestEstimateEqBloomConfidence(t *testing.T) {
	b := NewBloomSized(10, 1<<12)
	for i := 0; i < 10; i++ {
		b.AddHash(BloomHashString(fmt.Sprintf("k-%d", i)))
	}
	// Any small filter has false positives; probe until a key tests
	// genuinely negative so the zero assertion is about estimation, not
	// filter luck.
	absent := ""
	for i := 0; i < 1000; i++ {
		if k := fmt.Sprintf("absent-%d", i); !b.MayContainString(k) {
			absent = k
			break
		}
	}
	if absent == "" {
		t.Fatal("no negative probe found in 1000 tries")
	}
	if f := EstimateFraction(Eq("s", absent), func(string) *ColStats {
		return &ColStats{Rows: 1000, Distinct: 10, HasMinMax: true, Min: "a", Max: "z", Bloom: b}
	}); f != 0 {
		t.Errorf("bloom-negative equality estimates %v, want 0", f)
	}
	crisp := EstimateFraction(Eq("s", "k-3"), func(string) *ColStats {
		return &ColStats{Rows: 1000, Distinct: 10, HasMinMax: true, Min: "a", Max: "z", Bloom: b, BloomFill: 0.05}
	})
	saturated := EstimateFraction(Eq("s", "k-3"), func(string) *ColStats {
		return &ColStats{Rows: 1000, Distinct: 10, HasMinMax: true, Min: "a", Max: "z", Bloom: b, BloomFill: 0.95}
	})
	if crisp <= 0 || saturated <= 0 {
		t.Fatalf("positive probes estimate crisp=%v saturated=%v, want > 0", crisp, saturated)
	}
	if saturated >= crisp {
		t.Errorf("saturated filter estimate %v not discounted below crisp %v", saturated, crisp)
	}
}

func TestEstimateRowsScales(t *testing.T) {
	stats := func(string) *ColStats {
		return &ColStats{Rows: 100, HasMinMax: true, Min: int64(0), Max: int64(100)}
	}
	rows := EstimateRows(Le("x", int64(10)), stats, 10000)
	if rows < 500 || rows > 2000 {
		t.Fatalf("EstimateRows = %.0f, want ~1000", rows)
	}
}
