package scan

import (
	"bytes"
	"fmt"
	"math"
)

// Vectorized predicate evaluation. VecEval narrows a Selection over a batch
// instead of deciding one record at a time; AND is bitmap intersection with
// short-circuit (an empty running selection stops evaluating — and so stops
// decoding — further children's columns), OR is bitmap union over the rows
// the earlier children left undecided.
//
// Equivalence with the scalar path is exact on the rows it matters for:
// VecEval examines exactly the (row, subpredicate) pairs the scalar
// short-circuit order would examine, so nulls, type-mismatch errors, and
// verdicts all agree with per-record Eval — the property the vectorize
// on/off test dimension asserts.

// VecSource provides column vectors for the rows of the current batch. It
// is the batch analogue of Evaluator: ColVec resolves (and lazily decodes)
// a whole column, KeyVec answers map-key existence from storage-level
// capabilities (the DCSL window dictionary) without decoding the maps.
type VecSource interface {
	// ColVec returns the column's vector for the batch, decoding it on
	// first use. The vector is read-only.
	ColVec(column string) (*Vector, error)
	// KeyVec decides key existence for the selected rows, returning the
	// subset of sel whose maps contain key. answered reports whether the
	// store could decide; when false the caller falls back to ColVec.
	// sel is not mutated.
	KeyVec(column, key string, sel *Selection) (res *Selection, answered bool, err error)
}

// cmpFloat mirrors CompareValues' float branch: a total order with NaN
// below -Inf and NaN == NaN.
func cmpFloat(a, b float64) int {
	aN, bN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aN && bN:
		return 0
	case aN:
		return -1
	case bN:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// vecComparer returns a per-row comparator of v's rows against lit, chosen
// once per batch so the row loop is branch-light and allocation-free, or
// nil when rows of this representation cannot uniformly compare with lit
// (the caller then falls back to boxed CompareValues per row, which yields
// the exact scalar-path verdicts and errors). Null rows must be handled by
// the caller before invoking the comparator.
func vecComparer(v *Vector, lit any) func(i int) int {
	switch v.Kind {
	case VecBool:
		if b, ok := lit.(bool); ok {
			lb := int64(0)
			if b {
				lb = 1
			}
			return func(i int) int {
				switch x := v.Ints[i]; {
				case x == lb:
					return 0
				case x == 0:
					return -1
				default:
					return 1
				}
			}
		}
	case VecInt32, VecInt64:
		if li, ok := asInt(lit); ok {
			return func(i int) int {
				switch x := v.Ints[i]; {
				case x < li:
					return -1
				case x > li:
					return 1
				default:
					return 0
				}
			}
		}
		if lf, ok := asFloat(lit); ok {
			return func(i int) int { return cmpFloat(float64(v.Ints[i]), lf) }
		}
	case VecFloat64:
		if lf, ok := asFloat(lit); ok {
			return func(i int) int { return cmpFloat(v.Floats[i], lf) }
		}
	case VecString, VecBytes:
		var lb []byte
		switch x := lit.(type) {
		case string:
			lb = []byte(x)
		case []byte:
			lb = x
		default:
			return nil
		}
		return func(i int) int { return bytes.Compare(v.BytesAt(i), lb) }
	}
	return nil
}

// VecEval implements Predicate.
func (p *cmpPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	out := GetEmptySelection(in.Len())
	if in.Empty() {
		return out, nil
	}
	// Equality and inequality against a string literal try the
	// dictionary-id space first: on DCSL columns the batch's ids decode
	// without the strings, the needle resolves once per window, and the
	// row loop compares integers (scan/idvec.go).
	if p.op == OpEq || p.op == OpNe {
		if needle, isStr := litAsString(p.lit); isStr {
			if ids, ok := src.(IDSource); ok {
				iv, err := ids.IDVec(p.col)
				if err != nil {
					PutSelection(out)
					return nil, err
				}
				if iv != nil {
					PutSelection(out)
					return p.vecEvalIDs(src, iv, in, needle), nil
				}
			}
		}
	}
	v, err := src.ColVec(p.col)
	if err != nil {
		return nil, err
	}
	cmp := vecComparer(v, p.lit)
	for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
		if v.IsNull(i) {
			continue
		}
		if cmp != nil {
			if opHolds(p.op, cmp(i)) {
				out.Set(i)
			}
			continue
		}
		val := v.Value(i)
		if val == nil {
			continue
		}
		c, ok := CompareValues(val, p.lit)
		if !ok {
			return nil, fmt.Errorf("scan: cannot compare column %q value %T with literal %T", p.col, val, p.lit)
		}
		if opHolds(p.op, c) {
			out.Set(i)
		}
	}
	return out, nil
}

// VecEval implements Predicate.
func (p *rangePred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	out := GetEmptySelection(in.Len())
	if in.Empty() {
		return out, nil
	}
	v, err := src.ColVec(p.col)
	if err != nil {
		return nil, err
	}
	cmpLo, cmpHi := vecComparer(v, p.lo), vecComparer(v, p.hi)
	for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
		if v.IsNull(i) {
			continue
		}
		if cmpLo != nil && cmpHi != nil {
			if cmpLo(i) >= 0 && cmpHi(i) <= 0 {
				out.Set(i)
			}
			continue
		}
		val := v.Value(i)
		if val == nil {
			continue
		}
		cLo, okLo := CompareValues(val, p.lo)
		cHi, okHi := CompareValues(val, p.hi)
		if !okLo || !okHi {
			return nil, fmt.Errorf("scan: cannot compare column %q value %T with range [%T, %T]", p.col, val, p.lo, p.hi)
		}
		if cLo >= 0 && cHi <= 0 {
			out.Set(i)
		}
	}
	return out, nil
}

// VecEval implements Predicate.
func (p *prefixPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	out := GetEmptySelection(in.Len())
	if in.Empty() {
		return out, nil
	}
	v, err := src.ColVec(p.col)
	if err != nil {
		return nil, err
	}
	pb := []byte(p.prefix)
	if v.Kind == VecString || v.Kind == VecBytes {
		for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
			if v.IsNull(i) {
				continue
			}
			if bytes.HasPrefix(v.BytesAt(i), pb) {
				out.Set(i)
			}
		}
		return out, nil
	}
	for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
		if v.IsNull(i) {
			continue
		}
		switch s := v.Value(i).(type) {
		case nil:
		case string:
			if bytes.HasPrefix([]byte(s), pb) {
				out.Set(i)
			}
		case []byte:
			if bytes.HasPrefix(s, pb) {
				out.Set(i)
			}
		default:
			return nil, fmt.Errorf("scan: prefix on non-string column %q (%T)", p.col, s)
		}
	}
	return out, nil
}

// VecEval implements Predicate.
func (p *nullPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	if in.Empty() {
		return GetEmptySelection(in.Len()), nil
	}
	// A dictionary-encoded column answers nullness from its id vector's
	// null bitmap — no value bytes decoded.
	if ids, ok := src.(IDSource); ok {
		iv, err := ids.IDVec(p.col)
		if err != nil {
			return nil, err
		}
		if iv != nil {
			out := GetEmptySelection(in.Len())
			for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
				if iv.IsNull(i) != p.negate {
					out.Set(i)
				}
			}
			return out, nil
		}
	}
	v, err := src.ColVec(p.col)
	if err != nil {
		return nil, err
	}
	if v.Kind == VecAny {
		// Boxed rows represent SQL NULL as a nil value, like the scalar
		// path, whether or not the validity bitmap tags them.
		out := GetEmptySelection(in.Len())
		for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
			if (v.IsNull(i) || v.Anys[i] == nil) != p.negate {
				out.Set(i)
			}
		}
		return out, nil
	}
	if !v.HasNulls() {
		if p.negate {
			return in.cloneFromPool(), nil
		}
		return GetEmptySelection(in.Len()), nil
	}
	out := GetEmptySelection(in.Len())
	for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
		if v.IsNull(i) != p.negate {
			out.Set(i)
		}
	}
	return out, nil
}

// VecEval implements Predicate.
func (p *keyPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	if in.Empty() {
		return GetEmptySelection(in.Len()), nil
	}
	if res, answered, err := src.KeyVec(p.col, p.key, in); err != nil {
		return nil, err
	} else if answered {
		return res, nil
	}
	v, err := src.ColVec(p.col)
	if err != nil {
		return nil, err
	}
	out := GetEmptySelection(in.Len())
	for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
		if v.IsNull(i) {
			continue
		}
		val := v.Value(i)
		if val == nil {
			continue
		}
		m, ok := val.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("scan: exists on non-map column %q (%T)", p.col, val)
		}
		if _, has := m[p.key]; has {
			out.Set(i)
		}
	}
	return out, nil
}

// VecEval implements Predicate: bitmap intersection with short-circuit —
// child k+1 sees only the rows child k accepted, so its column is never
// decoded for a batch the running selection already emptied (ColVec is
// lazy), and type errors on rows an earlier child rejected never surface,
// exactly like the scalar && order.
func (p *andPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	cur := in
	for _, k := range p.kids {
		if cur.Empty() {
			break
		}
		res, err := k.VecEval(src, cur)
		if err != nil {
			if cur != in {
				PutSelection(cur)
			}
			return nil, err
		}
		if cur != in {
			PutSelection(cur)
		}
		cur = res
	}
	if cur == in {
		cur = in.cloneFromPool()
	}
	return cur, nil
}

// VecEval implements Predicate: bitmap union over the rows the earlier
// children left undecided — child k+1 evaluates only where children 1..k
// were all false, exactly the rows the scalar || order would reach it on.
func (p *orPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	out := GetEmptySelection(in.Len())
	rem := in.cloneFromPool()
	for _, k := range p.kids {
		if rem.Empty() {
			break
		}
		res, err := k.VecEval(src, rem)
		if err != nil {
			PutSelection(rem)
			PutSelection(out)
			return nil, err
		}
		out.Or(res)
		rem.AndNot(res)
		PutSelection(res)
	}
	PutSelection(rem)
	return out, nil
}

// VecEval implements Predicate: the strict complement within in. The child
// is evaluated on every candidate row, like the scalar path.
func (p *notPred) VecEval(src VecSource, in *Selection) (*Selection, error) {
	res, err := p.kid.VecEval(src, in)
	if err != nil {
		return nil, err
	}
	out := in.cloneFromPool()
	out.AndNot(res)
	PutSelection(res)
	return out, nil
}

// EagerColumns returns the columns a vectorized evaluation of p is certain
// to decode for any batch with a non-empty candidate selection — the set a
// batch builder can prefetch in parallel without ever decoding a column the
// short-circuit order would have skipped. Conjunctions contribute only
// their first child (later children may be short-circuited away);
// disjunctions contribute every child (each sees at least the rows all
// earlier children rejected — only emptiness, unknowable up front, stops
// them); exists() columns are excluded because probing layouts answer them
// without decoding.
func EagerColumns(p Predicate) []string {
	if p == nil {
		return nil
	}
	return eagerColumns(p, nil)
}

func eagerColumns(p Predicate, dst []string) []string {
	switch q := p.(type) {
	case *cmpPred:
		return appendColumn(dst, q.col)
	case *rangePred:
		return appendColumn(dst, q.col)
	case *prefixPred:
		return appendColumn(dst, q.col)
	case *nullPred:
		return appendColumn(dst, q.col)
	case *keyPred:
		return dst
	case *andPred:
		if len(q.kids) > 0 {
			return eagerColumns(q.kids[0], dst)
		}
		return dst
	case *orPred:
		for _, k := range q.kids {
			dst = eagerColumns(k, dst)
		}
		return dst
	case *notPred:
		return eagerColumns(q.kid, dst)
	}
	return dst
}

// ProbeOnlyColumns returns the columns the given predicates read through
// exactly one key-existence test and never by value — the candidates for
// batch key probing (VecSource.KeyVec). A batch probe consumes the column's
// stream for the whole batch without producing values, which is safe only
// when no other evaluation site will ask the same cursor for a value or a
// second probe within the batch: a second exists() or any comparison — in
// any of the predicates sharing the cursor set — disqualifies the column
// here, and the caller must additionally exclude projected columns. Nil
// predicates are ignored.
func ProbeOnlyColumns(ps ...Predicate) []string {
	key := map[string]int{}
	val := map[string]int{}
	var cols []string
	for _, p := range ps {
		if p == nil {
			continue
		}
		cols = p.Columns(cols)
		countColumnUses(p, key, val)
	}
	var out []string
	for _, col := range cols {
		if key[col] == 1 && val[col] == 0 {
			out = append(out, col)
		}
	}
	return out
}

// IDOnlyColumns returns the columns whose every use across the given
// predicates is answerable in dictionary-id space: equality or inequality
// against a string-ish literal, and null tests (the id vector carries the
// null bitmap). Decoding a column's id vector consumes its stream for the
// batch without producing values, so the capability is safe only when no
// evaluation site will ask the same cursor for values — any range, prefix,
// non-string comparison, or key probe on the column, in any of the
// predicates sharing the cursor set, disqualifies it, and the caller must
// additionally exclude projected and aggregated columns. Nil predicates
// are ignored.
func IDOnlyColumns(ps ...Predicate) []string {
	idu := map[string]int{}
	other := map[string]int{}
	var cols []string
	for _, p := range ps {
		if p == nil {
			continue
		}
		cols = p.Columns(cols)
		countIDUses(p, idu, other)
	}
	var out []string
	for _, col := range cols {
		if idu[col] >= 1 && other[col] == 0 {
			out = append(out, col)
		}
	}
	return out
}

func countIDUses(p Predicate, idu, other map[string]int) {
	switch q := p.(type) {
	case *cmpPred:
		if q.op == OpEq || q.op == OpNe {
			if _, ok := litAsString(q.lit); ok {
				idu[q.col]++
				return
			}
		}
		other[q.col]++
	case *rangePred:
		other[q.col]++
	case *prefixPred:
		other[q.col]++
	case *nullPred:
		idu[q.col]++
	case *keyPred:
		other[q.col]++
	case *andPred:
		for _, k := range q.kids {
			countIDUses(k, idu, other)
		}
	case *orPred:
		for _, k := range q.kids {
			countIDUses(k, idu, other)
		}
	case *notPred:
		countIDUses(q.kid, idu, other)
	}
}

func countColumnUses(p Predicate, key, val map[string]int) {
	switch q := p.(type) {
	case *cmpPred:
		val[q.col]++
	case *rangePred:
		val[q.col]++
	case *prefixPred:
		val[q.col]++
	case *nullPred:
		val[q.col]++
	case *keyPred:
		key[q.col]++
	case *andPred:
		for _, k := range q.kids {
			countColumnUses(k, key, val)
		}
	case *orPred:
		for _, k := range q.kids {
			countColumnUses(k, key, val)
		}
	case *notPred:
		countColumnUses(q.kid, key, val)
	}
}
