package scan

import "math/bits"

// Column vectors and selection bitmaps — the data shapes of vectorized
// execution. A Vector holds one column's values for a contiguous batch of
// records in flat typed storage (no per-value boxing); a Selection is a
// bitmap over the batch's rows. Predicates evaluate batch-at-a-time via
// VecEval, narrowing a Selection instead of deciding one record at a time.

// VecKind is the physical representation of a Vector.
type VecKind int

// Vector representations. Primitive serde kinds map to dedicated typed
// storage; complex kinds (arrays, maps, nested records) fall back to boxed
// VecAny storage, which vectorizes control flow but not object churn.
const (
	VecBool VecKind = iota
	VecInt32
	VecInt64
	VecFloat64
	VecString
	VecBytes
	VecAny
)

// String returns a short name for the representation.
func (k VecKind) String() string {
	switch k {
	case VecBool:
		return "bool"
	case VecInt32:
		return "int32"
	case VecInt64:
		return "int64"
	case VecFloat64:
		return "float64"
	case VecString:
		return "string"
	case VecBytes:
		return "bytes"
	default:
		return "any"
	}
}

// Vector is one column's values for rows [0, Len()) of a batch, in flat
// typed storage. Integer kinds (bool, int32, int64) share Ints; string and
// bytes values share the Data/Offs arena (value i is Data[Offs[i]:Offs[i+1]]);
// complex values are boxed in Anys. Nulls are tracked in a bitmap whose zero
// value means "no nulls", so fully-valid columns pay nothing for validity.
//
// A Vector decoded by the storage layer is append-only during decode and
// read-only afterwards; vectors admitted to a cache are shared between
// scans and must never be mutated.
type Vector struct {
	Kind VecKind

	Ints   []int64   // VecBool (0/1), VecInt32, VecInt64
	Floats []float64 // VecFloat64
	Data   []byte    // VecString / VecBytes payload arena
	Offs   []int32   // len == Len()+1 for VecString / VecBytes
	Anys   []any     // VecAny

	null []uint64 // validity bitmap, bit set = null; nil when all valid
	n    int
}

// NewVector returns an empty vector of the given representation with
// capacity hints applied.
func NewVector(kind VecKind, capacity int) *Vector {
	v := &Vector{Kind: kind}
	v.Reset(kind, capacity)
	return v
}

// Reset empties the vector for reuse, switching it to the given
// representation and growing storage toward capacity. Buffers are retained
// across resets, so a pooled vector's arena warms up to its working size.
func (v *Vector) Reset(kind VecKind, capacity int) {
	v.Kind = kind
	v.n = 0
	v.null = v.null[:0]
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Data = v.Data[:0]
	v.Offs = v.Offs[:0]
	v.Anys = v.Anys[:0]
	switch kind {
	case VecBool, VecInt32, VecInt64:
		if cap(v.Ints) < capacity {
			v.Ints = make([]int64, 0, capacity)
		}
	case VecFloat64:
		if cap(v.Floats) < capacity {
			v.Floats = make([]float64, 0, capacity)
		}
	case VecString, VecBytes:
		if cap(v.Offs) < capacity+1 {
			v.Offs = make([]int32, 0, capacity+1)
		}
		v.Offs = append(v.Offs, 0)
	case VecAny:
		if cap(v.Anys) < capacity {
			v.Anys = make([]any, 0, capacity)
		}
	}
}

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// AppendInt appends an integer-kind row (bool rows append 0/1).
func (v *Vector) AppendInt(x int64) {
	v.Ints = append(v.Ints, x)
	v.n++
}

// AppendFloat appends a float64 row.
func (v *Vector) AppendFloat(x float64) {
	v.Floats = append(v.Floats, x)
	v.n++
}

// AppendBytes appends a string/bytes row into the arena.
func (v *Vector) AppendBytes(b []byte) {
	v.Data = append(v.Data, b...)
	v.Offs = append(v.Offs, int32(len(v.Data)))
	v.n++
}

// AppendString appends a string row into the arena without an intermediate
// []byte allocation.
func (v *Vector) AppendString(s string) {
	v.Data = append(v.Data, s...)
	v.Offs = append(v.Offs, int32(len(v.Data)))
	v.n++
}

// AppendAny appends a boxed row.
func (v *Vector) AppendAny(x any) {
	v.Anys = append(v.Anys, x)
	v.n++
}

// AppendNull appends a null row (zero-valued storage, null bit set).
func (v *Vector) AppendNull() {
	switch v.Kind {
	case VecBool, VecInt32, VecInt64:
		v.Ints = append(v.Ints, 0)
	case VecFloat64:
		v.Floats = append(v.Floats, 0)
	case VecString, VecBytes:
		v.Offs = append(v.Offs, int32(len(v.Data)))
	case VecAny:
		v.Anys = append(v.Anys, nil)
	}
	v.setNull(v.n)
	v.n++
}

func (v *Vector) setNull(i int) {
	w := i >> 6
	for len(v.null) <= w {
		v.null = append(v.null, 0)
	}
	v.null[w] |= 1 << (uint(i) & 63)
}

// IsNull reports whether row i is null.
func (v *Vector) IsNull(i int) bool {
	w := i >> 6
	if w >= len(v.null) {
		return false
	}
	return v.null[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row is null.
func (v *Vector) HasNulls() bool {
	for _, w := range v.null {
		if w != 0 {
			return true
		}
	}
	return false
}

// BytesAt returns the arena view of string/bytes row i. The view aliases
// the vector's storage and must not be mutated or retained past it.
func (v *Vector) BytesAt(i int) []byte {
	return v.Data[v.Offs[i]:v.Offs[i+1]]
}

// Value boxes row i into the serde dynamic representation the scalar path
// produces: bool, int32, int64, float64, string, a copied []byte, or the
// boxed complex value; nil for null rows. Byte-identical materialization
// from vectors depends on this mapping matching serde.Decoder.Value.
func (v *Vector) Value(i int) any {
	if v.IsNull(i) {
		return nil
	}
	switch v.Kind {
	case VecBool:
		return v.Ints[i] != 0
	case VecInt32:
		return int32(v.Ints[i])
	case VecInt64:
		return v.Ints[i]
	case VecFloat64:
		return v.Floats[i]
	case VecString:
		return string(v.BytesAt(i))
	case VecBytes:
		b := v.BytesAt(i)
		out := make([]byte, len(b))
		copy(out, b)
		return out
	default:
		return v.Anys[i]
	}
}

// MemBytes estimates the vector's resident size, the unit vector-cache
// budgets are accounted in.
func (v *Vector) MemBytes() int64 {
	s := int64(len(v.Ints))*8 + int64(len(v.Floats))*8 +
		int64(len(v.Data)) + int64(len(v.Offs))*4 + int64(len(v.null))*8
	for _, a := range v.Anys {
		s += boxedSize(a)
	}
	return s
}

// boxedSize is a coarse per-object footprint estimate for VecAny rows.
func boxedSize(a any) int64 {
	switch x := a.(type) {
	case nil:
		return 8
	case string:
		return 16 + int64(len(x))
	case []byte:
		return 24 + int64(len(x))
	case map[string]any:
		s := int64(48)
		for k, v := range x {
			s += 16 + int64(len(k)) + boxedSize(v)
		}
		return s
	case []any:
		s := int64(24)
		for _, e := range x {
			s += boxedSize(e)
		}
		return s
	default:
		return 16
	}
}

// Selection is a bitmap over the rows of a batch. Operations never extend
// past the batch length.
type Selection struct {
	words []uint64
	n     int
}

// NewSelection returns a selection of n rows, all selected.
func NewSelection(n int) *Selection {
	s := &Selection{words: make([]uint64, (n+63)/64), n: n}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// NewEmptySelection returns a selection of n rows, none selected.
func NewEmptySelection(n int) *Selection {
	return &Selection{words: make([]uint64, (n+63)/64), n: n}
}

// trim clears bits beyond the row count so whole-word operations stay exact.
func (s *Selection) trim() {
	if tail := uint(s.n) & 63; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << tail) - 1
	}
}

// Len returns the number of rows the selection covers.
func (s *Selection) Len() int { return s.n }

// Count returns the number of selected rows.
func (s *Selection) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no row is selected.
func (s *Selection) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Test reports whether row i is selected.
func (s *Selection) Test(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set selects row i.
func (s *Selection) Set(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear deselects row i.
func (s *Selection) Clear(i int) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Clone returns an independent copy.
func (s *Selection) Clone() *Selection {
	return &Selection{words: append([]uint64(nil), s.words...), n: s.n}
}

// And intersects s with o in place (bitmap AND).
func (s *Selection) And(o *Selection) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Or unions o into s in place (bitmap OR).
func (s *Selection) Or(o *Selection) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNot removes o's rows from s in place (s &^= o).
func (s *Selection) AndNot(o *Selection) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Next returns the first selected row >= i, or -1 when none remains. It is
// the iteration primitive batch consumers drain matches with.
func (s *Selection) Next(i int) int {
	if i < 0 {
		i = 0
	}
	for i < s.n {
		w := s.words[i>>6] >> (uint(i) & 63)
		if w != 0 {
			return i + bits.TrailingZeros64(w)
		}
		i = (i>>6 + 1) << 6
	}
	return -1
}
