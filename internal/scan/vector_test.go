package scan_test

// Vector and Selection units, plus the batch-evaluation property: over
// random vectors (with nulls, boxed rows, and type-mismatched literals) and
// random predicates, VecEval must select exactly the rows per-record Eval
// accepts — and must error exactly when some examined row would have made
// the scalar path error. Error messages are not compared, only presence: the
// two paths surface the same failure from different loop shapes.

import (
	"fmt"
	"math/rand"
	"testing"

	"colmr/internal/scan"
)

func TestVectorSelectionOps(t *testing.T) {
	// 70 rows crosses a word boundary, so trim and Next are exercised on a
	// partial final word.
	n := 70
	s := scan.NewSelection(n)
	if s.Count() != n || s.Len() != n {
		t.Fatalf("full selection: count %d len %d", s.Count(), s.Len())
	}
	e := scan.NewEmptySelection(n)
	if !e.Empty() || e.Count() != 0 {
		t.Fatalf("empty selection: count %d", e.Count())
	}
	if got := e.Next(0); got != -1 {
		t.Fatalf("Next on empty = %d", got)
	}
	e.Set(3)
	e.Set(64)
	e.Set(69)
	if got := e.Count(); got != 3 {
		t.Fatalf("count after sets = %d", got)
	}
	var got []int
	for i := e.Next(0); i >= 0; i = e.Next(i + 1) {
		got = append(got, i)
	}
	if fmt.Sprint(got) != "[3 64 69]" {
		t.Fatalf("iterated %v", got)
	}
	e.Clear(64)
	if e.Test(64) || !e.Test(3) {
		t.Fatal("Clear/Test mismatch")
	}

	a := scan.NewEmptySelection(n)
	b := scan.NewEmptySelection(n)
	a.Set(1)
	a.Set(65)
	b.Set(65)
	b.Set(2)
	c := a.Clone()
	c.And(b)
	if c.Count() != 1 || !c.Test(65) {
		t.Fatalf("And: %d selected", c.Count())
	}
	c = a.Clone()
	c.Or(b)
	if c.Count() != 3 {
		t.Fatalf("Or: %d selected", c.Count())
	}
	c = a.Clone()
	c.AndNot(b)
	if c.Count() != 1 || !c.Test(1) {
		t.Fatalf("AndNot: %d selected", c.Count())
	}
}

func TestVectorValueBoxing(t *testing.T) {
	v := scan.NewVector(scan.VecInt32, 4)
	v.AppendInt(7)
	v.AppendNull()
	if got := v.Value(0); got != int32(7) {
		t.Fatalf("int32 boxing: %T %v", got, got)
	}
	if v.Value(1) != nil || !v.IsNull(1) || !v.HasNulls() {
		t.Fatal("null row not null")
	}

	v = scan.NewVector(scan.VecBool, 2)
	v.AppendInt(1)
	v.AppendInt(0)
	if v.Value(0) != true || v.Value(1) != false {
		t.Fatal("bool boxing")
	}

	v = scan.NewVector(scan.VecString, 2)
	v.AppendBytes([]byte("ab"))
	v.AppendBytes(nil)
	if got := v.Value(0); got != "ab" {
		t.Fatalf("string boxing: %T %v", got, got)
	}
	if got := v.Value(1); got != "" {
		t.Fatalf("empty string boxing: %T %v", got, got)
	}

	v = scan.NewVector(scan.VecBytes, 1)
	v.AppendBytes([]byte("xy"))
	b := v.Value(0).([]byte)
	b[0] = 'z' // Value copies bytes; the arena must not alias out
	if string(v.BytesAt(0)) != "xy" {
		t.Fatal("bytes boxing aliases the arena")
	}

	v = scan.NewVector(scan.VecFloat64, 1)
	v.AppendFloat(1.5)
	if v.Value(0) != 1.5 {
		t.Fatal("float boxing")
	}

	v = scan.NewVector(scan.VecAny, 2)
	v.AppendAny(map[string]any{"k": int32(1)})
	v.AppendAny(nil)
	if _, ok := v.Value(0).(map[string]any); !ok {
		t.Fatal("any boxing")
	}

	// Reset reuses storage and re-seeds the string arena sentinel.
	v.Reset(scan.VecString, 8)
	v.AppendBytes([]byte("q"))
	if v.Len() != 1 || v.Value(0) != "q" {
		t.Fatal("reset vector broken")
	}
}

func TestVectorProbeOnlyColumns(t *testing.T) {
	p1 := scan.And(scan.KeyExists("m", "k"), scan.Cmp("a", scan.OpEq, 1))
	if got := scan.ProbeOnlyColumns(p1); len(got) != 1 || got[0] != "m" {
		t.Fatalf("single exists: %v", got)
	}
	// A value read of the same column disqualifies it.
	p2 := scan.And(scan.KeyExists("m", "k"), scan.NotNull("m"))
	if got := scan.ProbeOnlyColumns(p2); len(got) != 0 {
		t.Fatalf("exists+null: %v", got)
	}
	// A second probe disqualifies too: both would consume the same stream.
	p3 := scan.Or(scan.KeyExists("m", "k"), scan.KeyExists("m", "j"))
	if got := scan.ProbeOnlyColumns(p3); len(got) != 0 {
		t.Fatalf("double exists: %v", got)
	}
	// Uses are counted across all predicates sharing a cursor set.
	if got := scan.ProbeOnlyColumns(scan.KeyExists("m", "k"), scan.NotNull("m")); len(got) != 0 {
		t.Fatalf("cross-predicate: %v", got)
	}
	if got := scan.ProbeOnlyColumns(scan.KeyExists("m", "k"), nil); len(got) != 1 {
		t.Fatalf("nil member: %v", got)
	}
}

// vecTestSource serves scan.VecEval from in-memory vectors. Key probes are
// answered only for columns whose rows are all maps (or null) — the shape a
// real probing layout would have — and only when the test enables probing.
type vecTestSource struct {
	vecs  map[string]*scan.Vector
	probe bool
}

func (s *vecTestSource) ColVec(col string) (*scan.Vector, error) {
	v, ok := s.vecs[col]
	if !ok {
		return nil, fmt.Errorf("no column %q", col)
	}
	return v, nil
}

func (s *vecTestSource) KeyVec(col, key string, sel *scan.Selection) (*scan.Selection, bool, error) {
	v, ok := s.vecs[col]
	if !s.probe || !ok {
		return nil, false, nil
	}
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			continue
		}
		if _, isMap := v.Value(i).(map[string]any); !isMap && v.Value(i) != nil {
			return nil, false, nil
		}
	}
	out := scan.NewEmptySelection(sel.Len())
	for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
		if m, ok := v.Value(i).(map[string]any); ok {
			if _, has := m[key]; has {
				out.Set(i)
			}
		}
	}
	return out, true, nil
}

// vecTestKinds picks a random vector shape and a generator of its rows.
func vecTestColumn(rng *rand.Rand, n int) *scan.Vector {
	kind := []scan.VecKind{
		scan.VecBool, scan.VecInt32, scan.VecInt64, scan.VecFloat64,
		scan.VecString, scan.VecBytes, scan.VecAny,
	}[rng.Intn(7)]
	v := scan.NewVector(kind, n)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			v.AppendNull()
			continue
		}
		switch kind {
		case scan.VecBool:
			v.AppendInt(int64(rng.Intn(2)))
		case scan.VecInt32, scan.VecInt64:
			v.AppendInt(int64(rng.Intn(40)))
		case scan.VecFloat64:
			v.AppendFloat(float64(rng.Intn(100)) / 4)
		case scan.VecString, scan.VecBytes:
			v.AppendBytes([]byte{byte('a' + rng.Intn(4)), byte('a' + rng.Intn(4))})
		case scan.VecAny:
			// Boxed rows mix maps, strings, ints, and SQL NULLs, so
			// comparisons over them hit both verdicts and type errors.
			switch rng.Intn(4) {
			case 0:
				v.AppendAny(map[string]any{[]string{"k0", "k1", "k2"}[rng.Intn(3)]: "x"})
			case 1:
				v.AppendAny(string(rune('a' + rng.Intn(4))))
			case 2:
				v.AppendAny(int64(rng.Intn(40)))
			default:
				v.AppendAny(nil)
			}
		}
	}
	return v
}

// vecTestLeaf builds a random leaf over a random column, sometimes with a
// literal the column's rows cannot compare with (both paths must error when
// such a row is examined).
func vecTestLeaf(rng *rand.Rand, cols []string, vecs map[string]*scan.Vector) scan.Predicate {
	col := cols[rng.Intn(len(cols))]
	v := vecs[col]
	ops := []scan.Op{scan.OpEq, scan.OpNe, scan.OpLt, scan.OpLe, scan.OpGt, scan.OpGe}
	op := ops[rng.Intn(len(ops))]
	if rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			return scan.IsNull(col)
		}
		return scan.NotNull(col)
	}
	if rng.Intn(8) == 0 {
		// Poison literal: comparable with no row of any representation the
		// generator produces except VecBool/strings as noted.
		switch v.Kind {
		case scan.VecString, scan.VecBytes:
			return scan.Cmp(col, op, true)
		default:
			return scan.Cmp(col, op, "poison")
		}
	}
	switch v.Kind {
	case scan.VecBool:
		return scan.Cmp(col, op, rng.Intn(2) == 0)
	case scan.VecInt32, scan.VecInt64:
		if rng.Intn(3) == 0 {
			lo := rng.Intn(40)
			return scan.Between(col, lo, lo+rng.Intn(10))
		}
		return scan.Cmp(col, op, rng.Intn(40))
	case scan.VecFloat64:
		return scan.Cmp(col, op, float64(rng.Intn(100))/4)
	case scan.VecString:
		if rng.Intn(2) == 0 {
			return scan.HasPrefix(col, string(rune('a'+rng.Intn(4))))
		}
		return scan.Cmp(col, op, string([]byte{byte('a' + rng.Intn(4)), byte('a' + rng.Intn(4))}))
	case scan.VecBytes:
		if rng.Intn(2) == 0 {
			return scan.HasPrefix(col, string(rune('a'+rng.Intn(4))))
		}
		return scan.Cmp(col, op, []byte{byte('a' + rng.Intn(4)), byte('a' + rng.Intn(4))})
	default:
		switch rng.Intn(3) {
		case 0:
			return scan.KeyExists(col, []string{"k0", "k1", "k2"}[rng.Intn(3)])
		case 1:
			return scan.Cmp(col, op, int64(rng.Intn(40)))
		default:
			return scan.Cmp(col, op, string(rune('a'+rng.Intn(4))))
		}
	}
}

func vecTestPredicate(rng *rand.Rand, cols []string, vecs map[string]*scan.Vector, depth int) scan.Predicate {
	if depth <= 0 || rng.Intn(3) == 0 {
		return vecTestLeaf(rng, cols, vecs)
	}
	kids := make([]scan.Predicate, 2+rng.Intn(2))
	for i := range kids {
		kids[i] = vecTestPredicate(rng, cols, vecs, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return scan.And(kids...)
	case 1:
		return scan.Or(kids...)
	default:
		return scan.Not(kids[0])
	}
}

func TestVectorEvalProperty(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 80
	}
	rng := rand.New(rand.NewSource(20110408))
	for round := 0; round < rounds; round++ {
		n := rng.Intn(150)
		cols := []string{"a", "b", "c"}[:1+rng.Intn(3)]
		vecs := make(map[string]*scan.Vector, len(cols))
		for _, col := range cols {
			vecs[col] = vecTestColumn(rng, n)
		}
		pred := vecTestPredicate(rng, cols, vecs, 2)

		// Candidate selection: full, empty, or a random subset.
		var in *scan.Selection
		switch rng.Intn(3) {
		case 0:
			in = scan.NewSelection(n)
		case 1:
			in = scan.NewEmptySelection(n)
		default:
			in = scan.NewEmptySelection(n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					in.Set(i)
				}
			}
		}

		// Scalar reference: per-record Eval over the same rows, through the
		// unanswered-HasKey fallback (materialize the map, test the key).
		want := scan.NewEmptySelection(n)
		var wantErr bool
		for i := in.Next(0); i >= 0; i = in.Next(i + 1) {
			row := i
			ok, err := pred.Eval(scan.Getter(func(col string) (any, error) {
				return vecs[col].Value(row), nil
			}))
			if err != nil {
				wantErr = true
				break
			}
			if ok {
				want.Set(i)
			}
		}

		src := &vecTestSource{vecs: vecs, probe: rng.Intn(2) == 0}
		got, err := pred.VecEval(src, in)
		if wantErr {
			if err == nil {
				t.Fatalf("round %d: pred %s: scalar path errors, VecEval did not", round, pred)
			}
			continue
		}
		if err != nil {
			t.Fatalf("round %d: pred %s: VecEval: %v (scalar path did not error)", round, pred, err)
		}
		for i := 0; i < n; i++ {
			if got.Test(i) != want.Test(i) {
				t.Fatalf("round %d: pred %s: row %d: VecEval %v, scalar %v (probe=%v)",
					round, pred, i, got.Test(i), want.Test(i), src.probe)
			}
		}
		// VecEval must never select outside the candidate set.
		stray := got.Clone()
		stray.AndNot(in)
		if !stray.Empty() {
			t.Fatalf("round %d: pred %s: selected rows outside the candidate selection", round, pred)
		}
	}
}
