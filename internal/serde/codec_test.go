package serde

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colmr/internal/sim"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	cases := []struct {
		schema *Schema
		value  any
	}{
		{Bool(), true},
		{Bool(), false},
		{Int(), int32(0)},
		{Int(), int32(-1)},
		{Int(), int32(1 << 30)},
		{Int(), int32(-(1 << 31))},
		{Long(), int64(1) << 62},
		{Long(), int64(-1) << 62},
		{Time(), int64(1293840000000)},
		{Double(), 3.14159},
		{Double(), -0.0},
		{String(), ""},
		{String(), "http://a.com"},
		{Bytes(), []byte{}},
		{Bytes(), []byte{0, 255, 10}},
	}
	for _, c := range cases {
		buf, err := AppendValue(nil, c.schema, c.value)
		if err != nil {
			t.Errorf("encode %v %v: %v", c.schema.Kind, c.value, err)
			continue
		}
		d := NewDecoder(buf, nil)
		got, err := d.Value(c.schema)
		if err != nil {
			t.Errorf("decode %v: %v", c.schema.Kind, err)
			continue
		}
		if !ValuesEqual(c.schema, got, c.value) {
			t.Errorf("round-trip %v: got %v, want %v", c.schema.Kind, got, c.value)
		}
		if d.Remaining() != 0 {
			t.Errorf("%v: %d bytes left over", c.schema.Kind, d.Remaining())
		}
	}
}

func TestEncodeTypeMismatch(t *testing.T) {
	if _, err := AppendValue(nil, Int(), "not an int"); err == nil {
		t.Error("encoding string as int should fail")
	}
	if _, err := AppendValue(nil, String(), int32(1)); err == nil {
		t.Error("encoding int as string should fail")
	}
	if _, err := AppendValue(nil, MapOf(Int()), map[string]any{"a": "x"}); err == nil {
		t.Error("map with wrong value type should fail")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	schema := MustParse(`
T {
  bool b,
  int i,
  long l,
  double d,
  string s,
  bytes raw,
  string[] arr,
  map<string> m,
  Inner { int x, string[] ys } nested
}`)
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := RandomRecord(rand.New(rand.NewSource(seed^rng.Int63())), schema)
		buf, err := EncodeRecord(r)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := NewDecoder(buf, nil).Record(schema)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return RecordsEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Scan must consume exactly the bytes Value consumes and charge identical
// counters — that equivalence is what lets the harness price boxed vs view
// decoding from a single walk.
func TestScanMatchesValue(t *testing.T) {
	schema := MustParse(`
T { int i, double d, string s, bytes raw, map<string> m, string[] a }`)
	f := func(seed int64) bool {
		r := RandomRecord(rand.New(rand.NewSource(seed)), schema)
		buf, _ := EncodeRecord(r)

		var vStats, sStats sim.CPUStats
		dv := NewDecoder(buf, &vStats)
		if _, err := dv.Record(schema); err != nil {
			return false
		}
		ds := NewDecoder(buf, &sStats)
		if err := ds.Scan(schema); err != nil {
			return false
		}
		if dv.Pos() != ds.Pos() {
			t.Logf("pos mismatch: value %d, scan %d", dv.Pos(), ds.Pos())
			return false
		}
		// Scan does not materialize, so zero those counters before compare.
		vStats.ValuesMaterialized = 0
		vStats.RecordsMaterialized = 0
		return vStats == sStats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkipChargesOnlySkippedBytes(t *testing.T) {
	schema := MustParse(`T { string s, map<string> m }`)
	r := RandomRecord(rand.New(rand.NewSource(5)), schema)
	buf, _ := EncodeRecord(r)
	var st sim.CPUStats
	d := NewDecoder(buf, &st)
	if err := d.Skip(schema); err != nil {
		t.Fatal(err)
	}
	if st.SkippedBytes != int64(len(buf)) {
		t.Errorf("SkippedBytes = %d, want %d", st.SkippedBytes, len(buf))
	}
	if st.StringBytes != 0 || st.MapBytes != 0 || st.ValuesMaterialized != 0 {
		t.Errorf("skip charged decode counters: %+v", st)
	}
}

// Top-level primitives charge their own counters; values nested in complex
// types charge MapBytes. This attribution drives the Figure 8 model.
func TestCounterAttribution(t *testing.T) {
	schema := MustParse(`T { int i, string s, bytes raw, map<string> m }`)
	r := NewRecord(schema)
	r.Set("i", int32(7))
	r.Set("s", "hello")
	r.Set("raw", []byte{1, 2, 3})
	r.Set("m", map[string]any{"k1": "v1", "k2": "v2"})
	buf, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	var st sim.CPUStats
	if _, err := NewDecoder(buf, &st).Record(schema); err != nil {
		t.Fatal(err)
	}
	if st.IntBytes == 0 || st.StringBytes == 0 || st.RawBytes == 0 || st.MapBytes == 0 {
		t.Errorf("missing counters: %+v", st)
	}
	total := st.IntBytes + st.StringBytes + st.RawBytes + st.MapBytes + st.DoubleBytes
	if total != int64(len(buf)) {
		t.Errorf("counters sum to %d, want %d (each byte charged exactly once)", total, len(buf))
	}
	if st.RecordsMaterialized != 1 {
		t.Errorf("RecordsMaterialized = %d, want 1", st.RecordsMaterialized)
	}
}

func TestDecodeTruncated(t *testing.T) {
	schema := MustParse(`T { string s, map<string> m, int i }`)
	r := RandomRecord(rand.New(rand.NewSource(3)), schema)
	buf, _ := EncodeRecord(r)
	for cut := 0; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut], nil)
		if _, err := d.Record(schema); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded, want error", cut, len(buf))
		}
	}
}

func TestDecodeCorruptLengths(t *testing.T) {
	// A string whose declared length exceeds the buffer must fail cleanly.
	buf, _ := AppendValue(nil, String(), "abcdef")
	buf[0] = 200 // inflate length prefix
	if _, err := NewDecoder(buf, nil).Value(String()); err == nil {
		t.Error("oversized length prefix should fail")
	}
	// An array claiming more elements than bytes remain must fail before
	// allocating.
	abuf, _ := AppendValue(nil, ArrayOf(Int()), []any{int32(1)})
	abuf[0] = 255
	if _, err := NewDecoder(abuf, nil).Value(ArrayOf(Int())); err == nil {
		t.Error("oversized array count should fail")
	}
}

func TestDecodeIntOverflow(t *testing.T) {
	buf, _ := AppendValue(nil, Long(), int64(1)<<40)
	if _, err := NewDecoder(buf, nil).Value(Int()); err == nil {
		t.Error("decoding 2^40 as int should overflow")
	}
}

func TestMapEncodingDeterministic(t *testing.T) {
	s := MapOf(Int())
	m := map[string]any{"z": int32(1), "a": int32(2), "m": int32(3)}
	b1, _ := AppendValue(nil, s, m)
	for i := 0; i < 10; i++ {
		b2, _ := AppendValue(nil, s, m)
		if string(b1) != string(b2) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

func TestRecordSetGet(t *testing.T) {
	schema := MustParse(`T { int i, string s }`)
	r := NewRecord(schema)
	if err := r.Set("i", int32(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("i", "wrong type"); err == nil {
		t.Error("Set with wrong type should fail")
	}
	if err := r.Set("missing", int32(1)); err == nil {
		t.Error("Set of missing field should fail")
	}
	if _, err := r.Get("missing"); err == nil {
		t.Error("Get of missing field should fail")
	}
	v, err := r.Get("i")
	if err != nil || v.(int32) != 1 {
		t.Errorf("Get(i) = %v, %v", v, err)
	}
	if err := EncodeUnset(t, r); err == nil {
		t.Error("encoding a record with unset fields should fail")
	}
}

// EncodeUnset is a helper: encoding a partially set record must fail.
func EncodeUnset(t *testing.T, r *GenericRecord) error {
	t.Helper()
	_, err := EncodeRecord(r)
	return err
}

func TestDecoderReset(t *testing.T) {
	b1, _ := AppendValue(nil, Int(), int32(1))
	b2, _ := AppendValue(nil, Int(), int32(2))
	d := NewDecoder(b1, nil)
	if _, err := d.Value(Int()); err != nil {
		t.Fatal(err)
	}
	d.Reset(b2)
	v, err := d.Value(Int())
	if err != nil || v.(int32) != 2 {
		t.Errorf("after Reset: %v, %v", v, err)
	}
}
