package serde

import (
	"encoding/binary"
	"fmt"
	"math"

	"colmr/internal/sim"
)

// Decoder reads encoded values from a byte buffer and accumulates
// per-type deserialization counters.
//
// Counter attribution matches the paper's cost structure (Section 3.2,
// Figure 8): primitive values are charged to their own type's counter
// (IntBytes, DoubleBytes, StringBytes, RawBytes for byte arrays) whether
// they sit at the top level or inside arrays and nested records — in Java
// an Integer in an array costs the same boxing as an Integer field. Maps
// are the expensive case: everything inside a map, keys and values alike,
// is charged to MapBytes, the entry-object/hash-insert churn rate that
// Figure 8 shows dropping below disk bandwidth.
type Decoder struct {
	buf   []byte
	pos   int
	stats *sim.CPUStats
	depth int // >0 while inside a map value
}

// NewDecoder returns a decoder over buf. Stats may be nil to disable
// accounting.
func NewDecoder(buf []byte, stats *sim.CPUStats) *Decoder {
	return &Decoder{buf: buf, stats: stats}
}

// Reset repoints the decoder at a new buffer, keeping the stats sink.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.pos = 0
	d.depth = 0
}

// Pos returns the current byte offset.
func (d *Decoder) Pos() int { return d.pos }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) fail(what string) error {
	return fmt.Errorf("serde: decode %s at offset %d: truncated or corrupt input", what, d.pos)
}

func (d *Decoder) charge(kind Kind, n int) {
	if d.stats == nil {
		return
	}
	if d.depth > 0 {
		d.stats.MapBytes += int64(n)
		return
	}
	switch kind {
	case KindBool, KindInt, KindLong, KindTime:
		d.stats.IntBytes += int64(n)
	case KindDouble:
		d.stats.DoubleBytes += int64(n)
	case KindString:
		d.stats.StringBytes += int64(n)
	case KindBytes:
		d.stats.RawBytes += int64(n)
	default:
		d.stats.MapBytes += int64(n)
	}
}

// chargeHeader attributes structural bytes (array counts) to varint work.
func (d *Decoder) chargeHeader(n int) {
	if d.stats == nil {
		return
	}
	if d.depth > 0 {
		d.stats.MapBytes += int64(n)
		return
	}
	d.stats.IntBytes += int64(n)
}

func (d *Decoder) materialized() {
	if d.stats != nil {
		d.stats.ValuesMaterialized++
	}
}

// Value decodes one value of schema s, materializing the documented Go
// representation ("boxed" decoding — the Java analogue).
func (d *Decoder) Value(s *Schema) (any, error) {
	start := d.pos
	switch s.Kind {
	case KindBool:
		if d.pos >= len(d.buf) {
			return nil, d.fail("bool")
		}
		b := d.buf[d.pos] != 0
		d.pos++
		d.charge(s.Kind, 1)
		d.materialized()
		return b, nil
	case KindInt:
		v, n := binary.Varint(d.buf[d.pos:])
		if n <= 0 {
			return nil, d.fail("int")
		}
		d.pos += n
		d.charge(s.Kind, n)
		d.materialized()
		if v > math.MaxInt32 || v < math.MinInt32 {
			return nil, fmt.Errorf("serde: decode int at offset %d: value %d overflows int32", start, v)
		}
		return int32(v), nil
	case KindLong, KindTime:
		v, n := binary.Varint(d.buf[d.pos:])
		if n <= 0 {
			return nil, d.fail("long")
		}
		d.pos += n
		d.charge(s.Kind, n)
		d.materialized()
		return v, nil
	case KindDouble:
		if d.pos+8 > len(d.buf) {
			return nil, d.fail("double")
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.pos:])
		d.pos += 8
		d.charge(s.Kind, 8)
		d.materialized()
		return math.Float64frombits(bits), nil
	case KindString:
		b, n, err := d.lengthPrefixed("string")
		if err != nil {
			return nil, err
		}
		d.charge(s.Kind, n)
		d.materialized()
		return string(b), nil
	case KindBytes:
		b, n, err := d.lengthPrefixed("bytes")
		if err != nil {
			return nil, err
		}
		d.charge(s.Kind, n)
		d.materialized()
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case KindArray:
		count, n, err := d.uvarint("array count")
		if err != nil {
			return nil, err
		}
		d.chargeHeader(n)
		if count > uint64(d.Remaining()) {
			return nil, d.fail("array count")
		}
		arr := make([]any, 0, count)
		for i := uint64(0); i < count; i++ {
			e, err := d.Value(s.Elem)
			if err != nil {
				return nil, err
			}
			arr = append(arr, e)
		}
		d.materialized()
		return arr, nil
	case KindMap:
		d.depth++
		defer func() { d.depth-- }()
		count, n, err := d.uvarint("map count")
		if err != nil {
			return nil, err
		}
		d.charge(s.Kind, n)
		if count > uint64(d.Remaining()) {
			return nil, d.fail("map count")
		}
		m := make(map[string]any, count)
		for i := uint64(0); i < count; i++ {
			kb, kn, err := d.lengthPrefixed("map key")
			if err != nil {
				return nil, err
			}
			d.charge(KindMap, kn)
			d.materialized()
			v, err := d.Value(s.Elem)
			if err != nil {
				return nil, err
			}
			m[string(kb)] = v
		}
		d.materialized()
		return m, nil
	case KindRecord:
		rec := NewRecord(s)
		for i, f := range s.Fields {
			v, err := d.Value(f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", f.Name, err)
			}
			rec.values[i] = v
		}
		d.materialized()
		return rec, nil
	}
	return nil, fmt.Errorf("serde: decode: unknown kind %v", s.Kind)
}

// Record decodes a full record of schema s.
func (d *Decoder) Record(s *Schema) (*GenericRecord, error) {
	v, err := d.Value(s)
	if err != nil {
		return nil, err
	}
	rec, ok := v.(*GenericRecord)
	if !ok {
		return nil, fmt.Errorf("serde: decode: schema is not a record")
	}
	if d.stats != nil {
		d.stats.RecordsMaterialized++
	}
	return rec, nil
}

// Scan walks one value of schema s without materializing objects, charging
// the same per-type byte counters as Value ("view" decoding — the C++
// analogue; price with sim.CostModel.ViewCPUSeconds). Tests assert Scan and
// Value consume identical bytes and charge identical counters.
func (d *Decoder) Scan(s *Schema) error {
	switch s.Kind {
	case KindBool:
		if d.pos >= len(d.buf) {
			return d.fail("bool")
		}
		d.pos++
		d.charge(s.Kind, 1)
		return nil
	case KindInt, KindLong, KindTime:
		_, n := binary.Varint(d.buf[d.pos:])
		if n <= 0 {
			return d.fail("varint")
		}
		d.pos += n
		d.charge(s.Kind, n)
		return nil
	case KindDouble:
		if d.pos+8 > len(d.buf) {
			return d.fail("double")
		}
		d.pos += 8
		d.charge(s.Kind, 8)
		return nil
	case KindString, KindBytes:
		_, n, err := d.lengthPrefixed(s.Kind.String())
		if err != nil {
			return err
		}
		d.charge(s.Kind, n)
		return nil
	case KindArray:
		count, n, err := d.uvarint("array count")
		if err != nil {
			return err
		}
		d.chargeHeader(n)
		if count > uint64(d.Remaining()) {
			return d.fail("array count")
		}
		for i := uint64(0); i < count; i++ {
			if err := d.Scan(s.Elem); err != nil {
				return err
			}
		}
		return nil
	case KindMap:
		d.depth++
		defer func() { d.depth-- }()
		count, n, err := d.uvarint("map count")
		if err != nil {
			return err
		}
		d.charge(s.Kind, n)
		if count > uint64(d.Remaining()) {
			return d.fail("map count")
		}
		for i := uint64(0); i < count; i++ {
			_, kn, err := d.lengthPrefixed("map key")
			if err != nil {
				return err
			}
			d.charge(KindMap, kn)
			if err := d.Scan(s.Elem); err != nil {
				return err
			}
		}
		return nil
	case KindRecord:
		for _, f := range s.Fields {
			if err := d.Scan(f.Type); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
		return nil
	}
	return fmt.Errorf("serde: scan: unknown kind %v", s.Kind)
}

// Skip advances past one value of schema s without decoding it, charging
// only SkippedBytes (the cheap per-record skip of Section 5.2: lengths must
// still be read, but no objects are created).
func (d *Decoder) Skip(s *Schema) error {
	start := d.pos
	saved := d.stats
	d.stats = nil
	err := d.Scan(s)
	d.stats = saved
	if err != nil {
		return err
	}
	if d.stats != nil {
		d.stats.SkippedBytes += int64(d.pos - start)
	}
	return nil
}

// ReadUvarint reads a raw unsigned varint at the cursor. Layered formats
// (dictionary-compressed maps) use it for counts and ids; it charges no
// decode counters.
func (d *Decoder) ReadUvarint() (uint64, error) {
	v, _, err := d.uvarint("uvarint")
	return v, err
}

func (d *Decoder) uvarint(what string) (uint64, int, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, 0, d.fail(what)
	}
	d.pos += n
	return v, n, nil
}

// lengthPrefixed reads a uvarint length followed by that many bytes,
// returning the byte view and the total encoded size.
func (d *Decoder) lengthPrefixed(what string) ([]byte, int, error) {
	l, n, err := d.uvarint(what)
	if err != nil {
		return nil, 0, err
	}
	if l > uint64(d.Remaining()) {
		d.pos -= n
		return nil, 0, d.fail(what)
	}
	b := d.buf[d.pos : d.pos+int(l)]
	d.pos += int(l)
	return b, n + int(l), nil
}
