package serde

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding (Avro-style):
//
//	bool        one byte, 0 or 1
//	int/long    zig-zag varint
//	time        zig-zag varint (epoch milliseconds)
//	double      8 bytes, IEEE 754 little-endian
//	string      uvarint byte length + UTF-8 bytes
//	bytes       uvarint length + raw bytes
//	array       uvarint count + encoded elements
//	map         uvarint count + (string key, encoded value) pairs,
//	            keys in sorted order for deterministic output
//	record      fields encoded in declaration order
//
// The encoding is self-delimiting given the schema, which is what allows
// per-record skipping in plain column files and offset arithmetic in skip
// lists.

// AppendValue appends the encoding of v (which must match s) to dst.
func AppendValue(dst []byte, s *Schema, v any) ([]byte, error) {
	switch s.Kind {
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		if b {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case KindInt:
		iv, ok := v.(int32)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		return binary.AppendVarint(dst, int64(iv)), nil
	case KindLong, KindTime:
		lv, ok := v.(int64)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		return binary.AppendVarint(dst, lv), nil
	case KindDouble:
		dv, ok := v.(float64)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(dv)), nil
	case KindString:
		sv, ok := v.(string)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(sv)))
		return append(dst, sv...), nil
	case KindBytes:
		bv, ok := v.([]byte)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(bv)))
		return append(dst, bv...), nil
	case KindArray:
		av, ok := v.([]any)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(av)))
		var err error
		for _, e := range av {
			dst, err = AppendValue(dst, s.Elem, e)
			if err != nil {
				return dst, err
			}
		}
		return dst, nil
	case KindMap:
		mv, ok := v.(map[string]any)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(mv)))
		var err error
		for _, k := range sortedKeys(mv) {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst, err = AppendValue(dst, s.Elem, mv[k])
			if err != nil {
				return dst, err
			}
		}
		return dst, nil
	case KindRecord:
		rv, ok := v.(*GenericRecord)
		if !ok {
			return dst, encTypeErr(s, v)
		}
		return AppendRecord(dst, rv)
	}
	return dst, fmt.Errorf("serde: encode: unknown kind %v", s.Kind)
}

// AppendRecord appends the encoding of all fields of r in schema order.
func AppendRecord(dst []byte, r *GenericRecord) ([]byte, error) {
	var err error
	for i, f := range r.schema.Fields {
		v := r.values[i]
		if v == nil {
			return dst, fmt.Errorf("serde: encode: record %s field %q is unset", r.schema.Name, f.Name)
		}
		dst, err = AppendValue(dst, f.Type, v)
		if err != nil {
			return dst, fmt.Errorf("serde: encode: field %q: %w", f.Name, err)
		}
	}
	return dst, nil
}

// EncodeRecord returns the binary encoding of r.
func EncodeRecord(r *GenericRecord) ([]byte, error) {
	return AppendRecord(nil, r)
}

func encTypeErr(s *Schema, v any) error {
	return fmt.Errorf("serde: encode: value %T does not match schema %s", v, s.Kind)
}
