package serde

import (
	"math/rand"
	"testing"
)

// Decoders are exposed to on-disk bytes and must never panic, whatever the
// input. The fuzz targets run their seed corpus under plain `go test` and
// explore further under `go test -fuzz`.

func FuzzDecodeRecord(f *testing.F) {
	schema := MustParse(`
T { string s, int i, double d, bytes b, string[] a, map<long> m, Inner { int x } n }`)
	good, _ := EncodeRecord(RandomRecord(rand.New(rand.NewSource(1)), schema))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(good[:len(good)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data, nil)
		_, _ = d.Record(schema) // must not panic
		d.Reset(data)
		_ = d.Scan(schema)
		d.Reset(data)
		_ = d.Skip(schema)
	})
}

func FuzzParseSchema(f *testing.F) {
	f.Add("URLInfo { string url, map<string> metadata }")
	f.Add("X { int[][] m }")
	f.Add("{}{}{}")
	f.Add("map<map<map<string>>>")
	f.Fuzz(func(t *testing.T, src string) {
		if s, err := Parse(src); err == nil {
			// Anything that parses must render and re-parse to an equal
			// schema.
			again, err := Parse(s.String())
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", s.String(), err)
			}
			if !s.Equal(again) {
				t.Fatalf("round trip changed schema: %q", src)
			}
		}
	})
}

func FuzzParseJSONSchema(f *testing.F) {
	f.Add(`{"type":"record","name":"X","fields":[{"name":"a","type":"int"}]}`)
	f.Add(`"string"`)
	f.Add(`{"type":"map","values":{"type":"array","items":"long"}}`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseJSON([]byte(src)) // must not panic
	})
}

// TestDecodeRandomGarbage hammers the decoder with seeded random bytes —
// a deterministic complement to the fuzz targets.
func TestDecodeRandomGarbage(t *testing.T) {
	schema := MustParse(`T { string s, map<string> m, bytes b, int[] a }`)
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		d := NewDecoder(buf, nil)
		_, _ = d.Record(schema)
	}
}
