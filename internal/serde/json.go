package serde

import (
	"encoding/json"
	"fmt"
)

// Avro-compatible JSON schema interchange. The paper's record abstraction
// is Avro's (Appendix A), and Avro schemas are JSON documents; these
// helpers let colmr schemas round-trip through that representation:
//
//	{"type":"record","name":"URLInfo","fields":[
//	  {"name":"url","type":"string"},
//	  {"name":"fetchTime","type":{"type":"long","logicalType":"time"}},
//	  {"name":"inlink","type":{"type":"array","items":"string"}},
//	  {"name":"metadata","type":{"type":"map","values":"string"}},
//	  {"name":"content","type":"bytes"}]}

// jsonType is the JSON form of a schema node: either a primitive name
// string or an object.
type jsonType struct {
	Type        string      `json:"type"`
	LogicalType string      `json:"logicalType,omitempty"`
	Name        string      `json:"name,omitempty"`
	Items       any         `json:"items,omitempty"`
	Values      any         `json:"values,omitempty"`
	Fields      []jsonField `json:"fields,omitempty"`
}

type jsonField struct {
	Name string `json:"name"`
	Type any    `json:"type"`
}

// MarshalJSON renders the schema as an Avro-style JSON document.
func (s *Schema) MarshalJSON() ([]byte, error) {
	v, err := s.jsonValue()
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

func (s *Schema) jsonValue() (any, error) {
	switch s.Kind {
	case KindBool:
		return "boolean", nil
	case KindInt:
		return "int", nil
	case KindLong:
		return "long", nil
	case KindDouble:
		return "double", nil
	case KindString:
		return "string", nil
	case KindBytes:
		return "bytes", nil
	case KindTime:
		return jsonType{Type: "long", LogicalType: "time"}, nil
	case KindArray:
		items, err := s.Elem.jsonValue()
		if err != nil {
			return nil, err
		}
		return jsonType{Type: "array", Items: items}, nil
	case KindMap:
		values, err := s.Elem.jsonValue()
		if err != nil {
			return nil, err
		}
		return jsonType{Type: "map", Values: values}, nil
	case KindRecord:
		fields := make([]jsonField, len(s.Fields))
		for i, f := range s.Fields {
			ft, err := f.Type.jsonValue()
			if err != nil {
				return nil, err
			}
			fields[i] = jsonField{Name: f.Name, Type: ft}
		}
		return jsonType{Type: "record", Name: s.Name, Fields: fields}, nil
	}
	return nil, fmt.Errorf("serde: json: unknown kind %v", s.Kind)
}

// ParseJSON parses an Avro-style JSON schema document.
func ParseJSON(data []byte) (*Schema, error) {
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("serde: json: %w", err)
	}
	s, err := schemaFromJSON(raw)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func schemaFromJSON(v any) (*Schema, error) {
	switch x := v.(type) {
	case string:
		switch x {
		case "boolean":
			return Bool(), nil
		case "int":
			return Int(), nil
		case "long":
			return Long(), nil
		case "double", "float":
			return Double(), nil
		case "string":
			return String(), nil
		case "bytes":
			return Bytes(), nil
		default:
			return nil, fmt.Errorf("serde: json: unknown primitive %q", x)
		}
	case map[string]any:
		typ, _ := x["type"].(string)
		switch typ {
		case "long":
			if lt, _ := x["logicalType"].(string); lt == "time" || lt == "timestamp-millis" {
				return Time(), nil
			}
			return Long(), nil
		case "array":
			items, ok := x["items"]
			if !ok {
				return nil, fmt.Errorf("serde: json: array without items")
			}
			elem, err := schemaFromJSON(items)
			if err != nil {
				return nil, err
			}
			return ArrayOf(elem), nil
		case "map":
			values, ok := x["values"]
			if !ok {
				return nil, fmt.Errorf("serde: json: map without values")
			}
			elem, err := schemaFromJSON(values)
			if err != nil {
				return nil, err
			}
			return MapOf(elem), nil
		case "record":
			name, _ := x["name"].(string)
			rawFields, ok := x["fields"].([]any)
			if !ok {
				return nil, fmt.Errorf("serde: json: record %q without fields", name)
			}
			fields := make([]Field, 0, len(rawFields))
			for i, rf := range rawFields {
				fo, ok := rf.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("serde: json: record %q field %d is not an object", name, i)
				}
				fname, _ := fo["name"].(string)
				ftRaw, ok := fo["type"]
				if !ok {
					return nil, fmt.Errorf("serde: json: field %q has no type", fname)
				}
				ft, err := schemaFromJSON(ftRaw)
				if err != nil {
					return nil, fmt.Errorf("serde: json: field %q: %w", fname, err)
				}
				fields = append(fields, Field{Name: fname, Type: ft})
			}
			return RecordOf(name, fields...), nil
		default:
			// Primitive spelled as {"type":"int"}.
			if typ != "" {
				return schemaFromJSON(typ)
			}
			return nil, fmt.Errorf("serde: json: object without type")
		}
	default:
		return nil, fmt.Errorf("serde: json: unsupported node %T", v)
	}
}
