package serde

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := MustParse(urlInfoDSL)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON: %v\n%s", err, data)
	}
	if !s.Equal(got) {
		t.Errorf("round trip differs:\n%s\nvs\n%s", s, got)
	}
}

func TestSchemaJSONAvroShape(t *testing.T) {
	s := MustParse(urlInfoDSL)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`"type":"record"`,
		`"name":"URLInfo"`,
		`"type":"map"`,
		`"values":"string"`,
		`"items":"string"`,
		`"logicalType":"time"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("JSON schema missing %s:\n%s", want, text)
		}
	}
}

func TestParseJSONExternalAvro(t *testing.T) {
	// A hand-written Avro document (not produced by us) must parse.
	src := `{
	  "type": "record", "name": "Doc",
	  "fields": [
	    {"name": "id", "type": "string"},
	    {"name": "score", "type": {"type": "double"}},
	    {"name": "ts", "type": {"type": "long", "logicalType": "timestamp-millis"}},
	    {"name": "tags", "type": {"type": "array", "items": "string"}},
	    {"name": "props", "type": {"type": "map", "values": "int"}}
	  ]
	}`
	s, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Field("score").Kind != KindDouble {
		t.Error("score should be double")
	}
	if s.Field("ts").Kind != KindTime {
		t.Error("timestamp-millis should map to time")
	}
	if s.Field("tags").Elem.Kind != KindString {
		t.Error("tags should be string[]")
	}
	if s.Field("props").Elem.Kind != KindInt {
		t.Error("props should be map<int>")
	}
}

func TestParseJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`42`,
		`"wibble"`,
		`{"type":"array"}`,
		`{"type":"map"}`,
		`{"type":"record","name":"X"}`,
		`{"type":"record","name":"X","fields":[{"name":"a"}]}`,
		`{"type":"record","name":"X","fields":[{"name":"a","type":"mystery"}]}`,
		`{"nota":"type"}`,
	}
	for _, src := range bad {
		if _, err := ParseJSON([]byte(src)); err == nil {
			t.Errorf("ParseJSON(%q) succeeded, want error", src)
		}
	}
}
