package serde

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a schema in the paper's Figure 2 style:
//
//	URLInfo {
//	  string url,
//	  string srcUrl,
//	  time fetchTime,
//	  string[] inlink,
//	  map<string> metadata,
//	  map<string> annotations,
//	  bytes content
//	}
//
// Grammar:
//
//	schema  := [name] record
//	record  := "{" field ("," field)* [","] "}"
//	field   := type name
//	type    := base | type "[]" | "map" "<" type ">" | [name] record
//	base    := bool | int | long | double | string | bytes | time
//
// Map keys are always strings, matching the paper's map columns. Trailing
// commas and // line comments are permitted.
func Parse(src string) (*Schema, error) {
	p := &parser{toks: lex(src)}
	s, err := p.parseTop()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("serde: parse: unexpected %q after schema", p.peek())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse that panics on error, for compile-time-constant
// schemas in tests and generators.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("serde: parse: expected %q, got %q", t, got)
	}
	return nil
}

func (p *parser) parseTop() (*Schema, error) {
	name := ""
	if isIdent(p.peek()) && !isBaseType(p.peek()) {
		name = p.next()
	}
	if p.peek() != "{" {
		return nil, fmt.Errorf("serde: parse: expected '{', got %q", p.peek())
	}
	return p.parseRecord(name)
}

func (p *parser) parseRecord(name string) (*Schema, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var fields []Field
	for p.peek() != "}" {
		if p.eof() {
			return nil, fmt.Errorf("serde: parse: unterminated record %q", name)
		}
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname := p.next()
		if !isIdent(fname) {
			return nil, fmt.Errorf("serde: parse: expected field name, got %q", fname)
		}
		fields = append(fields, Field{Name: fname, Type: ft})
		if p.peek() == "," {
			p.next()
		} else if p.peek() != "}" {
			return nil, fmt.Errorf("serde: parse: expected ',' or '}', got %q", p.peek())
		}
	}
	p.next() // consume }
	return RecordOf(name, fields...), nil
}

func (p *parser) parseType() (*Schema, error) {
	var base *Schema
	tok := p.peek()
	switch {
	case tok == "map":
		p.next()
		if err := p.expect("<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// Tolerate the two-type spelling Map<String,String> from the paper's
		// Java schema: a leading "string," key type is accepted and dropped.
		if p.peek() == "," {
			p.next()
			if elem.Kind != KindString {
				return nil, fmt.Errorf("serde: parse: map keys must be strings")
			}
			elem, err = p.parseType()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(">"); err != nil {
			return nil, err
		}
		base = MapOf(elem)
	case isBaseType(tok):
		p.next()
		base = baseSchema(tok)
	case tok == "{":
		rec, err := p.parseRecord("")
		if err != nil {
			return nil, err
		}
		base = rec
	case isIdent(tok):
		// Named nested record: "Name { ... }".
		p.next()
		if p.peek() != "{" {
			return nil, fmt.Errorf("serde: parse: unknown type %q", tok)
		}
		rec, err := p.parseRecord(tok)
		if err != nil {
			return nil, err
		}
		base = rec
	default:
		return nil, fmt.Errorf("serde: parse: expected type, got %q", tok)
	}
	for p.peek() == "[]" {
		p.next()
		base = ArrayOf(base)
	}
	return base, nil
}

func isBaseType(t string) bool {
	switch strings.ToLower(t) {
	case "bool", "boolean", "int", "long", "double", "float", "string", "utf8", "bytes", "time":
		return true
	}
	return false
}

func baseSchema(t string) *Schema {
	switch strings.ToLower(t) {
	case "bool", "boolean":
		return Bool()
	case "int":
		return Int()
	case "long":
		return Long()
	case "double", "float":
		return Double()
	case "string", "utf8":
		return String()
	case "bytes":
		return Bytes()
	case "time":
		return Time()
	}
	return nil
}

func isIdent(t string) bool {
	if t == "" {
		return false
	}
	for i, r := range t {
		if i == 0 && !unicode.IsLetter(r) && r != '_' {
			return false
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}

// lex splits the source into tokens: identifiers, punctuation ({ } < > ,),
// and the two-character token "[]". Line comments are stripped.
func lex(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '[' && i+1 < len(src) && src[i+1] == ']':
			toks = append(toks, "[]")
			i += 2
		case strings.ContainsRune("{}<>,", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune("{}<>,[] \t\n\r/", rune(src[j])) {
				j++
			}
			if j == i {
				// Unknown single character; emit it and let the parser
				// produce a useful error.
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, src[i:j])
				i = j
			}
		}
	}
	return toks
}
