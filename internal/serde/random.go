package serde

import (
	"math/rand"
)

// RandomValue generates a pseudorandom value conforming to s, for property
// tests and workload generation. Sizes are kept modest (strings <= 24
// bytes, containers <= 6 elements) so deeply nested schemas stay bounded.
func RandomValue(rng *rand.Rand, s *Schema) any {
	switch s.Kind {
	case KindBool:
		return rng.Intn(2) == 0
	case KindInt:
		return int32(rng.Int63()) // full 32-bit range incl. negatives
	case KindLong, KindTime:
		return rng.Int63() - rng.Int63()
	case KindDouble:
		return rng.NormFloat64() * 1e6
	case KindString:
		return randString(rng, rng.Intn(25))
	case KindBytes:
		b := make([]byte, rng.Intn(25))
		rng.Read(b)
		return b
	case KindArray:
		n := rng.Intn(7)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = RandomValue(rng, s.Elem)
		}
		return arr
	case KindMap:
		n := rng.Intn(7)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[randString(rng, 1+rng.Intn(8))] = RandomValue(rng, s.Elem)
		}
		return m
	case KindRecord:
		return RandomRecord(rng, s)
	}
	return nil
}

// RandomRecord generates a fully populated pseudorandom record.
func RandomRecord(rng *rand.Rand, s *Schema) *GenericRecord {
	r := NewRecord(s)
	for i, f := range s.Fields {
		r.values[i] = RandomValue(rng, f.Type)
	}
	return r
}

const randAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./:"

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = randAlphabet[rng.Intn(len(randAlphabet))]
	}
	return string(b)
}
