package serde

import (
	"fmt"
	"sort"
)

// Record is the generic record abstraction map functions are written
// against (paper, Appendix A). Both the eager generic record here and the
// lazy column-backed record in internal/core implement it, so a map
// function is oblivious to the materialization strategy — the property
// Section 5.1 requires.
type Record interface {
	// Schema returns the record's (possibly projected) schema.
	Schema() *Schema
	// Get returns the value of the named field. Values use the Go
	// representations documented on GenericRecord.
	Get(name string) (any, error)
}

// GenericRecord is an eagerly materialized record.
//
// Field value representations:
//
//	bool    -> bool
//	int     -> int32
//	long    -> int64
//	time    -> int64 (epoch milliseconds)
//	double  -> float64
//	string  -> string
//	bytes   -> []byte
//	array   -> []any
//	map     -> map[string]any
//	record  -> *GenericRecord
type GenericRecord struct {
	schema *Schema
	values []any
}

// NewRecord returns an empty record of the given record schema.
func NewRecord(s *Schema) *GenericRecord {
	return &GenericRecord{schema: s, values: make([]any, len(s.Fields))}
}

// Schema implements Record.
func (r *GenericRecord) Schema() *Schema { return r.schema }

// Get implements Record.
func (r *GenericRecord) Get(name string) (any, error) {
	i := r.schema.FieldIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("serde: record %s has no field %q", r.schema.Name, name)
	}
	return r.values[i], nil
}

// GetAt returns the value at field position i.
func (r *GenericRecord) GetAt(i int) any { return r.values[i] }

// Set assigns the named field. The value must already use the documented
// representation; SetAt is the unchecked positional variant.
func (r *GenericRecord) Set(name string, v any) error {
	i := r.schema.FieldIndex(name)
	if i < 0 {
		return fmt.Errorf("serde: record %s has no field %q", r.schema.Name, name)
	}
	if err := checkValue(r.schema.Fields[i].Type, v); err != nil {
		return fmt.Errorf("serde: set %s.%s: %w", r.schema.Name, name, err)
	}
	r.values[i] = v
	return nil
}

// SetAt assigns field position i without type checking.
func (r *GenericRecord) SetAt(i int, v any) { r.values[i] = v }

// checkValue validates that v matches the schema's Go representation.
func checkValue(s *Schema, v any) error {
	if v == nil {
		return fmt.Errorf("nil value")
	}
	switch s.Kind {
	case KindBool:
		_, ok := v.(bool)
		return okErr(ok, s, v)
	case KindInt:
		_, ok := v.(int32)
		return okErr(ok, s, v)
	case KindLong, KindTime:
		_, ok := v.(int64)
		return okErr(ok, s, v)
	case KindDouble:
		_, ok := v.(float64)
		return okErr(ok, s, v)
	case KindString:
		_, ok := v.(string)
		return okErr(ok, s, v)
	case KindBytes:
		_, ok := v.([]byte)
		return okErr(ok, s, v)
	case KindArray:
		arr, ok := v.([]any)
		if !ok {
			return okErr(false, s, v)
		}
		for i, e := range arr {
			if err := checkValue(s.Elem, e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case KindMap:
		m, ok := v.(map[string]any)
		if !ok {
			return okErr(false, s, v)
		}
		for k, e := range m {
			if err := checkValue(s.Elem, e); err != nil {
				return fmt.Errorf("key %q: %w", k, err)
			}
		}
		return nil
	case KindRecord:
		rec, ok := v.(*GenericRecord)
		if !ok {
			return okErr(false, s, v)
		}
		if !rec.schema.Equal(s) {
			return fmt.Errorf("record schema mismatch")
		}
		return nil
	}
	return fmt.Errorf("unknown kind %v", s.Kind)
}

func okErr(ok bool, s *Schema, v any) error {
	if ok {
		return nil
	}
	return fmt.Errorf("value %T does not match schema %s", v, s.Kind)
}

// ValuesEqual compares two values of the same schema for deep equality.
// Used by tests and the lazy-vs-eager equivalence checks.
func ValuesEqual(s *Schema, a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch s.Kind {
	case KindBool:
		return a.(bool) == b.(bool)
	case KindInt:
		return a.(int32) == b.(int32)
	case KindLong, KindTime:
		return a.(int64) == b.(int64)
	case KindDouble:
		return a.(float64) == b.(float64)
	case KindString:
		return a.(string) == b.(string)
	case KindBytes:
		ab, bb := a.([]byte), b.([]byte)
		if len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
		return true
	case KindArray:
		aa, ba := a.([]any), b.([]any)
		if len(aa) != len(ba) {
			return false
		}
		for i := range aa {
			if !ValuesEqual(s.Elem, aa[i], ba[i]) {
				return false
			}
		}
		return true
	case KindMap:
		am, bm := a.(map[string]any), b.(map[string]any)
		if len(am) != len(bm) {
			return false
		}
		for k, av := range am {
			bv, ok := bm[k]
			if !ok || !ValuesEqual(s.Elem, av, bv) {
				return false
			}
		}
		return true
	case KindRecord:
		ar, br := a.(*GenericRecord), b.(*GenericRecord)
		for i, f := range s.Fields {
			if !ValuesEqual(f.Type, ar.values[i], br.values[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// RecordsEqual compares the fields common to both records' schemas.
func RecordsEqual(a, b Record) bool {
	for _, f := range a.Schema().Fields {
		av, aerr := a.Get(f.Name)
		bv, berr := b.Get(f.Name)
		if aerr != nil || berr != nil {
			return aerr != nil && berr != nil
		}
		if !ValuesEqual(f.Type, av, bv) {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys sorted, for deterministic encoding.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
