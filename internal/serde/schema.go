// Package serde implements the record abstraction and binary serialization
// framework the paper assumes (Appendix A): an Avro-like schema language
// with primitive and complex types (arrays, maps, nested records), generic
// records accessed by field name, and a compact binary encoding.
//
// Decoders accumulate per-type deserialization counters (sim.CPUStats) so
// the cost model can price "boxed" Java-style object creation against
// "view" C++-style direct buffer access — the contrast measured by the
// paper's Figure 8.
package serde

import (
	"fmt"
	"strings"
)

// Kind enumerates schema types.
type Kind int

// Schema kinds. Time is a logical type stored as a long, used by the
// paper's URLInfo.fetchTime field.
const (
	KindBool Kind = iota
	KindInt
	KindLong
	KindDouble
	KindString
	KindBytes
	KindTime
	KindArray
	KindMap
	KindRecord
)

// String returns the DSL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindTime:
		return "time"
	case KindArray:
		return "array"
	case KindMap:
		return "map"
	case KindRecord:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsComplex reports whether the kind is one of the paper's complex types
// (array, map, nested record), which are stored as a single column and are
// the expensive ones to deserialize.
func (k Kind) IsComplex() bool {
	return k == KindArray || k == KindMap || k == KindRecord
}

// Schema is a type descriptor. Schemas are immutable after construction.
type Schema struct {
	Kind Kind
	// Name is the record name (KindRecord only).
	Name string
	// Elem is the array element type or map value type.
	Elem *Schema
	// Fields are the record fields, in declaration order.
	Fields []Field

	index map[string]int
}

// Field is a named field of a record schema.
type Field struct {
	Name string
	Type *Schema
}

// Primitive schema constructors.
func Bool() *Schema   { return &Schema{Kind: KindBool} }
func Int() *Schema    { return &Schema{Kind: KindInt} }
func Long() *Schema   { return &Schema{Kind: KindLong} }
func Double() *Schema { return &Schema{Kind: KindDouble} }
func String() *Schema { return &Schema{Kind: KindString} }
func Bytes() *Schema  { return &Schema{Kind: KindBytes} }
func Time() *Schema   { return &Schema{Kind: KindTime} }

// ArrayOf returns an array schema with the given element type.
func ArrayOf(elem *Schema) *Schema { return &Schema{Kind: KindArray, Elem: elem} }

// MapOf returns a map schema with string keys and the given value type,
// matching the paper's Map<String, T> columns.
func MapOf(value *Schema) *Schema { return &Schema{Kind: KindMap, Elem: value} }

// RecordOf returns a record schema with the given name and fields.
func RecordOf(name string, fields ...Field) *Schema {
	s := &Schema{Kind: KindRecord, Name: name, Fields: fields}
	s.buildIndex()
	return s
}

func (s *Schema) buildIndex() {
	s.index = make(map[string]int, len(s.Fields))
	for i, f := range s.Fields {
		s.index[f.Name] = i
	}
}

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if s == nil || s.Kind != KindRecord {
		return -1
	}
	if s.index == nil {
		s.buildIndex()
	}
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Field returns the schema of the named field, or nil.
func (s *Schema) Field(name string) *Schema {
	i := s.FieldIndex(name)
	if i < 0 {
		return nil
	}
	return s.Fields[i].Type
}

// FieldNames returns the record's field names in declaration order.
func (s *Schema) FieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Project returns a record schema containing only the named fields, in the
// order given. It is the schema seen by a map function after projection
// pushdown (ColumnInputFormat.setColumns).
func (s *Schema) Project(names ...string) (*Schema, error) {
	if s.Kind != KindRecord {
		return nil, fmt.Errorf("serde: project on non-record schema %s", s.Kind)
	}
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i := s.FieldIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("serde: project: no field %q in record %s", n, s.Name)
		}
		fields = append(fields, s.Fields[i])
	}
	return RecordOf(s.Name, fields...), nil
}

// Equal reports deep structural equality.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Kind != o.Kind || s.Name != o.Name || len(s.Fields) != len(o.Fields) {
		return false
	}
	if (s.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if s.Elem != nil && !s.Elem.Equal(o.Elem) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i].Name != o.Fields[i].Name || !s.Fields[i].Type.Equal(o.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness: arrays and maps have element
// types, records have uniquely named fields, and no nil children exist.
func (s *Schema) Validate() error {
	if s == nil {
		return fmt.Errorf("serde: nil schema")
	}
	switch s.Kind {
	case KindArray, KindMap:
		if s.Elem == nil {
			return fmt.Errorf("serde: %s schema missing element type", s.Kind)
		}
		return s.Elem.Validate()
	case KindRecord:
		if len(s.Fields) == 0 {
			return fmt.Errorf("serde: record %q has no fields", s.Name)
		}
		seen := make(map[string]bool, len(s.Fields))
		for _, f := range s.Fields {
			if f.Name == "" {
				return fmt.Errorf("serde: record %q has an unnamed field", s.Name)
			}
			if seen[f.Name] {
				return fmt.Errorf("serde: record %q has duplicate field %q", s.Name, f.Name)
			}
			seen[f.Name] = true
			if err := f.Type.Validate(); err != nil {
				return fmt.Errorf("serde: field %q: %w", f.Name, err)
			}
		}
		return nil
	case KindBool, KindInt, KindLong, KindDouble, KindString, KindBytes, KindTime:
		return nil
	default:
		return fmt.Errorf("serde: unknown kind %d", int(s.Kind))
	}
}

// String renders the schema in the DSL accepted by Parse, so
// Parse(s.String()) reproduces s.
func (s *Schema) String() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Schema) render(b *strings.Builder, depth int) {
	switch s.Kind {
	case KindArray:
		s.Elem.render(b, depth)
		b.WriteString("[]")
	case KindMap:
		b.WriteString("map<")
		s.Elem.render(b, depth)
		b.WriteString(">")
	case KindRecord:
		if s.Name != "" {
			b.WriteString(s.Name)
			b.WriteString(" ")
		}
		b.WriteString("{\n")
		indent := strings.Repeat("  ", depth+1)
		for i, f := range s.Fields {
			b.WriteString(indent)
			f.Type.render(b, depth+1)
			b.WriteString(" ")
			b.WriteString(f.Name)
			if i < len(s.Fields)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString("}")
	default:
		b.WriteString(s.Kind.String())
	}
}
