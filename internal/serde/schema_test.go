package serde

import (
	"strings"
	"testing"
)

// urlInfoDSL is the paper's Figure 2 schema.
const urlInfoDSL = `
URLInfo {
  string url,
  string srcUrl,
  time fetchTime,
  string[] inlink,
  map<string> metadata,
  map<string> annotations,
  bytes content
}`

func TestParseURLInfo(t *testing.T) {
	s, err := Parse(urlInfoDSL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "URLInfo" || len(s.Fields) != 7 {
		t.Fatalf("parsed %q with %d fields", s.Name, len(s.Fields))
	}
	checks := []struct {
		field string
		kind  Kind
	}{
		{"url", KindString},
		{"srcUrl", KindString},
		{"fetchTime", KindTime},
		{"inlink", KindArray},
		{"metadata", KindMap},
		{"annotations", KindMap},
		{"content", KindBytes},
	}
	for _, c := range checks {
		f := s.Field(c.field)
		if f == nil {
			t.Errorf("missing field %q", c.field)
			continue
		}
		if f.Kind != c.kind {
			t.Errorf("field %q kind = %v, want %v", c.field, f.Kind, c.kind)
		}
	}
	if s.Field("inlink").Elem.Kind != KindString {
		t.Error("inlink should be string[]")
	}
	if s.Field("metadata").Elem.Kind != KindString {
		t.Error("metadata should be map<string>")
	}
}

func TestParseJavaStyleMap(t *testing.T) {
	// The paper's Java schema writes Map<String,String>.
	s, err := Parse(`X { map<string,string> metadata }`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Field("metadata").Kind != KindMap || s.Field("metadata").Elem.Kind != KindString {
		t.Errorf("metadata = %v", s.Field("metadata"))
	}
	if _, err := Parse(`X { map<int,string> m }`); err == nil {
		t.Error("non-string map keys should be rejected")
	}
}

func TestParseNestedAndArrays(t *testing.T) {
	s, err := Parse(`
Doc {
  string id,
  Inner { int a, double b } nested,
  map<long> counts,
  int[][] matrix, // comment survives
}`)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Field("nested")
	if n.Kind != KindRecord || n.Name != "Inner" || len(n.Fields) != 2 {
		t.Errorf("nested = %+v", n)
	}
	m := s.Field("matrix")
	if m.Kind != KindArray || m.Elem.Kind != KindArray || m.Elem.Elem.Kind != KindInt {
		t.Errorf("matrix = %v", m)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"X {",
		"X { string }",
		"X { wibble x }",
		"X { string a string b }",
		"X { map<string a }",
		"X {} trailing {}",
		"X { }",                    // empty record fails validation
		"X { string a, string a }", // duplicate field
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	s := MustParse(urlInfoDSL)
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing rendered schema: %v\n%s", err, s.String())
	}
	if !s.Equal(again) {
		t.Errorf("round-trip schema differs:\n%s\nvs\n%s", s, again)
	}
}

func TestProject(t *testing.T) {
	s := MustParse(urlInfoDSL)
	p, err := s.Project("url", "metadata")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fields) != 2 || p.Fields[0].Name != "url" || p.Fields[1].Name != "metadata" {
		t.Errorf("projection = %v", p.FieldNames())
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting a missing field should fail")
	}
	if _, err := Int().Project("x"); err == nil {
		t.Error("projecting a non-record should fail")
	}
}

func TestEqualAndValidate(t *testing.T) {
	a := MustParse(urlInfoDSL)
	b := MustParse(urlInfoDSL)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := RecordOf("URLInfo", Field{Name: "url", Type: String()})
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
	if err := (&Schema{Kind: KindArray}).Validate(); err == nil {
		t.Error("array without element type should fail validation")
	}
	if err := (&Schema{Kind: KindMap}).Validate(); err == nil {
		t.Error("map without value type should fail validation")
	}
	var nilSchema *Schema
	if err := nilSchema.Validate(); err == nil {
		t.Error("nil schema should fail validation")
	}
}

func TestFieldIndexOnNonRecord(t *testing.T) {
	if Int().FieldIndex("x") != -1 {
		t.Error("FieldIndex on non-record should be -1")
	}
	var s *Schema
	if s.FieldIndex("x") != -1 {
		t.Error("FieldIndex on nil should be -1")
	}
}

func TestKindString(t *testing.T) {
	for k := KindBool; k <= KindRecord; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !KindMap.IsComplex() || !KindArray.IsComplex() || !KindRecord.IsComplex() {
		t.Error("complex kinds misclassified")
	}
	if KindInt.IsComplex() || KindBytes.IsComplex() {
		t.Error("primitive kinds misclassified as complex")
	}
}
