package serve

import (
	"sync"
	"time"
)

// Clock is the server's modeled-time source. Modeled seconds are the same
// currency sim.CostModel prices work in, so window deadlines, queueing
// delays, and batch run times all live on one timeline.
//
// Two implementations cover the two ways the server runs:
//
//   - WallClock (the default) anchors modeled time to real time: one
//     modeled second per wall second. AfterFunc arms real timers, so a
//     forming window seals when its deadline passes even if no further
//     query ever arrives — what a live HTTP server needs.
//   - ManualClock never advances on its own and never fires timers: window
//     deadlines are enforced purely by the timestamps of later arrivals
//     and by Flush/Drain. That makes admission a deterministic function of
//     the arrival sequence — the discrete-event mode the bench sweep and
//     the property tests run in.
type Clock interface {
	// Now returns the current modeled time in seconds.
	Now() float64
	// AfterFunc arranges for fn to be called (from any goroutine) once
	// modeled time passes t; the returned function cancels. Clocks that
	// cannot self-advance (ManualClock) return a no-op cancel and never
	// call fn.
	AfterFunc(t float64, fn func()) (cancel func())
}

// WallClock returns a Clock mapping modeled seconds 1:1 onto wall seconds,
// anchored at the moment of the call.
func WallClock() Clock { return &wallClock{epoch: time.Now()} }

type wallClock struct{ epoch time.Time }

func (c *wallClock) Now() float64 { return time.Since(c.epoch).Seconds() }

func (c *wallClock) AfterFunc(t float64, fn func()) func() {
	d := time.Duration((t - c.Now()) * float64(time.Second))
	if d < 0 {
		d = 0
	}
	tm := time.AfterFunc(d, fn)
	return func() { tm.Stop() }
}

// ManualClock is a Clock that advances only when told to: the simulation
// timebase. Arrival timestamps are read at Enqueue time, so a driver sets
// the clock, enqueues, sets the clock again — and admission decisions
// depend only on that sequence.
type ManualClock struct {
	mu sync.Mutex
	t  float64
}

// Now returns the manually set time.
func (c *ManualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Set advances the clock to t (monotone: earlier values are ignored).
func (c *ManualClock) Set(t float64) {
	c.mu.Lock()
	if t > c.t {
		c.t = t
	}
	c.mu.Unlock()
}

// AfterFunc on a manual clock never fires: deadlines are enforced by later
// arrivals' timestamps and by Flush/Drain.
func (c *ManualClock) AfterFunc(float64, func()) func() { return func() {} }
