// Package serve turns the batch engine into a service: a long-running,
// continuously admitting scan server over one mapred.Session — the
// PowerDrill serving model ("Processing a Trillion Cells per Mouse Click"),
// where thousands of interactive users multiplex over shared column scans.
//
// Shared scans (mapred.RunBatch) require queries to be co-submitted; a
// production system has queries *arriving*, asynchronously, from many
// tenants. The server converts arrival overlap into co-submission with an
// admission window: an arriving query holds its forming batch open for
// Options.Window modeled seconds, later compatible arrivals merge into it,
// and the sealed batch runs as one RunBatch over the session — one cursor
// set per shared split-directory, one scan cache across every tenant.
//
// Architecture (single-dispatcher, worker-pool-over-channels):
//
//	Enqueue/HTTP ─> events channel ─> dispatcher goroutine
//	                                   ├─ per-tenant FIFO queues (quota)
//	                                   ├─ round-robin admission -> forming window
//	                                   └─ sealed batches ─> MaxBatches workers
//	                                                          └─ Session.RunBatch
//
// Every admission decision — window open/seal, quota, round-robin order —
// happens in the dispatcher goroutine in event order. Under a ManualClock
// (no timers; deadlines enforced by later arrivals' timestamps and by
// Flush/Drain) serving is therefore a deterministic function of the arrival
// sequence, which is how bench.Serve produces reproducible sweeps and how
// the property test replays schedules.
//
// Fairness: Options.TenantQuota bounds one tenant's in-flight queries;
// excess arrivals wait in that tenant's FIFO and admission round-robins
// across tenants as capacity frees, so a burst from one tenant cannot
// starve the rest. Graceful drain: Drain stops admission, seals the window,
// flushes quota-waiting queries (still batched together), and returns when
// everything has been served.
//
// Invariants the property test (TestServeAdmissionInvarianceProperty)
// defends:
//
//   - Sharing invariance under asynchronous arrival: every served query's
//     output is byte-identical to its solo Session.Run, with solo-equal
//     GroupsPruned/BloomPruned/RecordsPruned/RecordsFiltered, across random
//     schemas, predicates, tenants, arrival orders, window sizes, and
//     quotas — the RunBatch invariant, now under admission-time batching.
//   - Attribution exactness: per-tenant charged bytes, cache hits, and
//     sharing savings sum exactly to the server's totals (shared physical
//     work split evenly across a batch's members, remainder to the
//     earliest-admitted).
//   - Window=0 is the no-batching identity: every query seals alone and
//     the served byte accounting equals sequential solo runs.
//
// Modeled time: waits, queueing, and batch run times live on one timeline
// in modeled seconds (sim.CostModel pricing), replayed against MaxBatches
// modeled servers in seal order; Stats reports p50/p95/p99 wait/run/latency
// overall and per tenant.
package serve
