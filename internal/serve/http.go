package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
)

// The HTTP face of the server: a thin API controller feeding the admission
// queue, the worker-pool-over-channels idiom of crawler frontends. Handlers
// never run scans themselves — they build a typed job, Enqueue it, and wait
// on the ticket, so HTTP queries batch with in-process ones.

// HandlerOptions configures the HTTP handler.
type HandlerOptions struct {
	// Datasets maps query-able dataset names to CIF dataset directories.
	// Requests name datasets by key; paths never cross the API.
	Datasets map[string]string
	// Default is the dataset name used when a request omits one.
	Default string
	// MaxLimit caps the rows a single query may return (default 100).
	MaxLimit int
	// AlwaysExplain attaches the EXPLAIN report to every query response,
	// as if each request had set Explain (the colserve -explain flag).
	AlwaysExplain bool
}

// QueryRequest is the POST /query body. Where uses the scan expression
// language — the same serialization `colscan -where` speaks — e.g.
// `int0 <= 100 && prefix(str0, "ab")`.
type QueryRequest struct {
	Tenant  string   `json:"tenant,omitempty"`
	Dataset string   `json:"dataset,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Where   string   `json:"where,omitempty"`
	Lazy    bool     `json:"lazy,omitempty"`
	// Agg pushes an aggregation into the scan — the `colscan -agg` form,
	// e.g. "count,min(int0) group by str0". The response carries the
	// aggregate rows instead of records; Limit and Columns do not apply.
	Agg string `json:"agg,omitempty"`
	// Limit asks for up to this many matching rows in the response;
	// 0 returns counts and statistics only.
	Limit int `json:"limit,omitempty"`
	// Explain attaches the cost-based plan — and, after the run, the
	// estimated-vs-actual pruning per tier — to the response. The plan's
	// choices (materialization mode, task sizing) are also applied to the
	// job where the request left them unpinned.
	Explain bool `json:"explain,omitempty"`
}

// QueryStats carries the query's solo-exact logical pruning counters, plus
// the aggregation-path counters for agg queries.
type QueryStats struct {
	SplitsPruned    int64 `json:"splitsPruned"`
	GroupsPruned    int64 `json:"groupsPruned"`
	BloomPruned     int64 `json:"bloomPruned"`
	RecordsPruned   int64 `json:"recordsPruned"`
	RecordsFiltered int64 `json:"recordsFiltered"`
	// Aggregation-path counters (zero for record queries): rows folded into
	// the aggregate, record groups answered from zone statistics alone, and
	// string comparisons replaced by dictionary-id comparisons.
	RowsAggregated    int64 `json:"rowsAggregated,omitempty"`
	AggGroupsShortcut int64 `json:"aggGroupsShortcut,omitempty"`
	DictIdCompares    int64 `json:"dictIdCompares,omitempty"`
}

// AggregateRow renders one aggregate output row: the group value ("" for
// the global group) and one rendered value per requested function.
type AggregateRow struct {
	Group  string   `json:"group,omitempty"`
	Values []string `json:"values"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
	Where   string `json:"where,omitempty"`
	Matched int64  `json:"matched"`
	// Rows holds up to Limit matching rows, rendered column->value. Which
	// rows is unspecified (map tasks race to fill the budget); the slice
	// is sorted for stable presentation.
	Rows []map[string]string `json:"rows,omitempty"`
	// Agg holds the aggregate rows for agg queries, with Funcs labeling
	// each value column (the parsed function list, in order).
	Agg   []AggregateRow `json:"agg,omitempty"`
	Funcs []string       `json:"funcs,omitempty"`
	Stats QueryStats     `json:"stats"`
	// Serve is the serving-side account: batch membership, window wait,
	// modeled run time, attributed charged bytes and sharing savings.
	Serve Report `json:"serve"`
	// Explain is present when the request asked for it (or the handler
	// runs with AlwaysExplain): the cost-based plan and its
	// estimated-vs-actual accounting.
	Explain *ExplainReport `json:"explain,omitempty"`
}

// ExplainReport is the JSON rendering of a query's cost-based plan next to
// what actually happened — the serving-side face of `colscan -explain`.
type ExplainReport struct {
	// Plan is the one-line plan summary; Reasons records why each choice
	// fell the way it did.
	Plan    string   `json:"plan"`
	Reasons []string `json:"reasons,omitempty"`
	// Scheduler tier: split-directories listed, estimated to survive
	// footer pruning, and actually scanned.
	SplitsTotal     int `json:"splitsTotal"`
	SplitsEstimated int `json:"splitsEstimated"`
	SplitsScanned   int `json:"splitsScanned"`
	// Record tier: estimated qualifying rows next to the matched count.
	RowsEstimated float64 `json:"rowsEstimated"`
	RowsMatched   int64   `json:"rowsMatched"`
	// Modeled seconds for the plan next to the run's modeled actual.
	EstimatedSeconds float64 `json:"estimatedSeconds"`
	ActualSeconds    float64 `json:"actualSeconds"`
	// SharedDeclined counts co-scan admissions the cost model declined for
	// this query (shared-batch path only).
	SharedDeclined int `json:"sharedDeclined,omitempty"`
}

type httpHandler struct {
	srv  *Server
	opts HandlerOptions
}

// NewHandler returns the HTTP/JSON face of a server:
//
//	POST /query   run a scan (QueryRequest -> QueryResponse)
//	GET  /stats   live Stats snapshot
//	GET  /healthz liveness + draining state
func NewHandler(s *Server, opts HandlerOptions) http.Handler {
	if opts.MaxLimit <= 0 {
		opts.MaxLimit = 100
	}
	h := &httpHandler{srv: s, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.query)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/healthz", h.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// rowCollector gathers up to limit rendered rows across the query's
// (concurrent) map tasks.
type rowCollector struct {
	mu    sync.Mutex
	limit int
	rows  []map[string]string
}

func (c *rowCollector) add(rec serde.Record, cols []string) error {
	if c.limit <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.rows) >= c.limit {
		return nil
	}
	if len(cols) == 0 {
		cols = rec.Schema().FieldNames()
	}
	row := make(map[string]string, len(cols))
	for _, col := range cols {
		v, err := rec.Get(col)
		if err != nil {
			return err
		}
		row[col] = fmt.Sprintf("%v", v)
	}
	c.rows = append(c.rows, row)
	return nil
}

// sorted returns the rows in a stable order (by their rendered form).
func (c *rowCollector) sorted() []map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, len(c.rows))
	idx := make([]int, len(c.rows))
	for i, row := range c.rows {
		cols := make([]string, 0, len(row))
		for col := range row {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		var sb strings.Builder
		for _, col := range cols {
			sb.WriteString(col)
			sb.WriteByte('=')
			sb.WriteString(row[col])
			sb.WriteByte(';')
		}
		keys[i] = sb.String()
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]map[string]string, len(idx))
	for i, j := range idx {
		out[i] = c.rows[j]
	}
	return out
}

func (h *httpHandler) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	name := req.Dataset
	if name == "" {
		name = h.opts.Default
	}
	path, ok := h.opts.Datasets[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	limit := req.Limit
	if limit > h.opts.MaxLimit {
		limit = h.opts.MaxLimit
	}

	b := core.ScanDataset(path).Columns(req.Columns...).Lazy(req.Lazy)
	if req.Where != "" {
		pred, err := scan.Parse(req.Where)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad where clause: %v", err)
			return
		}
		b = b.Where(pred)
	}
	var job *mapred.Job
	var agg *scan.Aggregate
	var collector *rowCollector
	if req.Agg != "" {
		var err error
		if agg, err = scan.ParseAggregate(req.Agg); err != nil {
			writeError(w, http.StatusBadRequest, "bad agg: %v", err)
			return
		}
		if req.Limit > 0 || len(req.Columns) > 0 {
			writeError(w, http.StatusBadRequest, "agg queries return aggregate rows; columns and limit do not apply")
			return
		}
		job = b.Aggregate(agg).AggJob()
	} else {
		collector = &rowCollector{limit: limit}
		job = b.Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			rec, ok := v.(serde.Record)
			if !ok {
				return fmt.Errorf("serve: map input is %T, not a record", v)
			}
			return collector.add(rec, req.Columns)
		}))
	}

	var plan *core.QueryPlan
	if req.Explain || h.opts.AlwaysExplain {
		if cif, ok := job.Input.(*core.InputFormat); ok {
			var err error
			if plan, err = cif.Explain(h.srv.FS(), &job.Conf, h.srv.Model()); err != nil {
				writeError(w, http.StatusInternalServerError, "explain: %v", err)
				return
			}
			// The plan's choices become the job's where the request left
			// them unpinned, so the response explains the scan that ran.
			plan.Apply(&job.Conf)
		}
	}

	ticket, err := h.srv.Enqueue(tenant, job)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	res, err := ticket.Wait()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	resp := QueryResponse{
		Tenant:  tenant,
		Dataset: name,
		Where:   req.Where,
		Matched: res.Total.RecordsProcessed,
		Stats: QueryStats{
			SplitsPruned:      res.Total.SplitsPruned,
			GroupsPruned:      res.Total.GroupsPruned,
			BloomPruned:       res.Total.BloomPruned,
			RecordsPruned:     res.Total.RecordsPruned,
			RecordsFiltered:   res.Total.RecordsFiltered,
			RowsAggregated:    res.Total.RowsAggregated,
			AggGroupsShortcut: res.Total.AggGroupsShortcut,
			DictIdCompares:    res.Total.DictIdCompares,
		},
		Serve: ticket.Report(),
	}
	if agg != nil {
		resp.Matched = res.Total.RowsAggregated
		for _, f := range agg.Funcs {
			resp.Funcs = append(resp.Funcs, f.String())
		}
		for _, row := range res.Agg.Rows() {
			ar := AggregateRow{Values: make([]string, len(row.Values))}
			if row.Group != nil {
				ar.Group = fmt.Sprintf("%v", row.Group)
			}
			for i, v := range row.Values {
				ar.Values[i] = fmt.Sprintf("%v", v)
			}
			resp.Agg = append(resp.Agg, ar)
		}
	} else {
		resp.Rows = collector.sorted()
	}
	if plan != nil {
		resp.Explain = &ExplainReport{
			Plan:             plan.Summary(),
			Reasons:          plan.Reasons,
			SplitsTotal:      plan.SplitsTotal,
			SplitsEstimated:  plan.SplitsEst,
			SplitsScanned:    res.Plan.SplitsTotal - res.Plan.SplitsPruned,
			RowsEstimated:    plan.RowsEst,
			RowsMatched:      res.Total.RecordsProcessed,
			EstimatedSeconds: plan.EstSeconds,
			ActualSeconds:    h.srv.Model().ScanSeconds(res.Total),
			SharedDeclined:   res.Plan.SharedDeclined,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *httpHandler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, h.srv.Stats())
}

func (h *httpHandler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": h.srv.Draining()})
}
