package serve_test

// The HTTP face: POST /query speaks the scan expression language and rides
// the same admission queue as in-process Enqueue; /stats and /healthz are
// plain JSON snapshots.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"colmr/internal/serve"
)

func svHTTP(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	fs := svFixture(t, 9)
	srv := serve.New(fs, serve.Options{Window: 0})
	handler := serve.NewHandler(srv, serve.HandlerOptions{
		Datasets: map[string]string{"events": "/d"},
		Default:  "events",
		MaxLimit: 10,
	})
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return srv, ts
}

func svPost(t *testing.T, ts *httptest.Server, req serve.QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPServeQuery(t *testing.T) {
	srv, ts := svHTTP(t)
	defer srv.Close()

	resp, body := svPost(t, ts, serve.QueryRequest{
		Tenant:  "web",
		Where:   `t <= 50`,
		Columns: []string{"s"},
		Limit:   5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if qr.Tenant != "web" || qr.Dataset != "events" {
		t.Errorf("echoed tenant %q dataset %q", qr.Tenant, qr.Dataset)
	}
	if qr.Matched != 51 {
		t.Errorf("matched %d, want 51 (t in 0..50)", qr.Matched)
	}
	if len(qr.Rows) != 5 {
		t.Errorf("returned %d rows, want limit 5", len(qr.Rows))
	}
	for _, row := range qr.Rows {
		if _, ok := row["s"]; !ok || len(row) != 1 {
			t.Errorf("row %v, want the projected column only", row)
		}
	}
	if qr.Serve.BatchQueries != 1 || qr.Serve.Matched != 51 {
		t.Errorf("serve report %+v", qr.Serve)
	}
	if qr.Stats.RecordsFiltered+qr.Stats.RecordsPruned == 0 {
		t.Errorf("predicate pruned/filtered nothing: %+v", qr.Stats)
	}

	// Limit above MaxLimit is clamped, not an error.
	resp, body = svPost(t, ts, serve.QueryRequest{Where: `t <= 50`, Limit: 1000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 10 {
		t.Errorf("returned %d rows, want MaxLimit 10", len(qr.Rows))
	}
	if qr.Tenant != "anonymous" {
		t.Errorf("defaulted tenant %q, want anonymous", qr.Tenant)
	}
}

func TestHTTPServeAggQuery(t *testing.T) {
	srv, ts := svHTTP(t)
	defer srv.Close()

	resp, body := svPost(t, ts, serve.QueryRequest{
		Tenant: "web",
		Where:  `t <= 50`,
		Agg:    "count,min(t),max(s)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if qr.Matched != 51 {
		t.Errorf("matched %d, want 51 rows aggregated", qr.Matched)
	}
	if len(qr.Rows) != 0 {
		t.Errorf("agg query returned %d record rows, want none", len(qr.Rows))
	}
	wantFuncs := []string{"count", "min(t)", "max(s)"}
	if fmt.Sprintf("%v", qr.Funcs) != fmt.Sprintf("%v", wantFuncs) {
		t.Errorf("funcs %v, want %v", qr.Funcs, wantFuncs)
	}
	if len(qr.Agg) != 1 {
		t.Fatalf("agg rows %v, want a single global row", qr.Agg)
	}
	got := qr.Agg[0]
	if got.Group != "" {
		t.Errorf("global group rendered %q, want empty", got.Group)
	}
	want := []string{"51", "0", "s050"}
	if fmt.Sprintf("%v", got.Values) != fmt.Sprintf("%v", want) {
		t.Errorf("agg values %v, want %v", got.Values, want)
	}
	if qr.Stats.RowsAggregated != 51 {
		t.Errorf("stats rowsAggregated %d, want 51", qr.Stats.RowsAggregated)
	}

	// Agg with limit or columns is a client error, as is a malformed agg.
	resp, _ = svPost(t, ts, serve.QueryRequest{Agg: "count", Limit: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("agg+limit: status %d, want 400", resp.StatusCode)
	}
	resp, _ = svPost(t, ts, serve.QueryRequest{Agg: "count", Columns: []string{"s"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("agg+columns: status %d, want 400", resp.StatusCode)
	}
	resp, _ = svPost(t, ts, serve.QueryRequest{Agg: "median(t)"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad agg: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPServeErrors(t *testing.T) {
	srv, ts := svHTTP(t)

	resp, _ := svPost(t, ts, serve.QueryRequest{Where: `t <=`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad where: status %d, want 400", resp.StatusCode)
	}
	resp, _ = svPost(t, ts, serve.QueryRequest{Dataset: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", getResp.StatusCode)
	}

	srv.Drain()
	resp, _ = svPost(t, ts, serve.QueryRequest{Where: `t <= 50`})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPServeStatsAndHealth(t *testing.T) {
	srv, ts := svHTTP(t)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, body := svPost(t, ts, serve.QueryRequest{Where: fmt.Sprintf(`t <= %d`, 30+20*i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || st.Completed != 3 {
		t.Errorf("stats queries %d completed %d, want 3/3", st.Queries, st.Completed)
	}
	if ten, ok := st.Tenants["anonymous"]; !ok || ten.Queries != 3 {
		t.Errorf("tenant rollup %+v, want anonymous with 3 queries", st.Tenants)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz["ok"] != true || hz["draining"] != false {
		t.Errorf("healthz %v", hz)
	}
}

// TestHTTPServeExplain: opting in via the request's explain flag attaches a
// plan report whose estimated numbers sit alongside the actuals, and queries
// that don't ask get no report.
func TestHTTPServeExplain(t *testing.T) {
	srv, ts := svHTTP(t)
	defer srv.Close()

	resp, body := svPost(t, ts, serve.QueryRequest{
		Tenant:  "web",
		Where:   `t <= 50`,
		Columns: []string{"s"},
		Explain: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	ex := qr.Explain
	if ex == nil {
		t.Fatalf("explain requested but absent: %s", body)
	}
	if ex.Plan == "" || len(ex.Reasons) == 0 {
		t.Errorf("empty plan rendering: %+v", ex)
	}
	if ex.SplitsTotal <= 0 || ex.SplitsScanned > ex.SplitsTotal {
		t.Errorf("split accounting %d scanned of %d total", ex.SplitsScanned, ex.SplitsTotal)
	}
	if ex.RowsMatched != 51 {
		t.Errorf("rowsMatched %d, want 51", ex.RowsMatched)
	}
	if ex.RowsEstimated <= 0 {
		t.Errorf("rowsEstimated %v, want > 0", ex.RowsEstimated)
	}
	if ex.EstimatedSeconds <= 0 || ex.ActualSeconds <= 0 {
		t.Errorf("modeled seconds est=%v actual=%v, want both > 0", ex.EstimatedSeconds, ex.ActualSeconds)
	}

	// Without the flag the field stays absent (and off the wire).
	resp, body = svPost(t, ts, serve.QueryRequest{Where: `t <= 50`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"explain"`)) {
		t.Errorf("unrequested explain on the wire: %s", body)
	}
}
