package serve_test

// Property test for admission invariance: the scan server's sharing window
// re-batches whatever arrives, so the shared-scan equivalence property must
// survive the jump from co-submission (mapred.RunBatch) to admission-time
// batching. For random schemas, datasets, predicates, tenants, arrival
// schedules, window sizes, quotas, and worker-pool widths, every served
// query's output must be byte-identical to its solo mapred.Run, with
// solo-equal logical counters — and the per-tenant attribution must sum
// exactly to the server's totals.
//
// ManualClock makes each round a discrete-event replay: admission is a pure
// function of the arrival sequence, so a failure reproduces from the seed.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/serve"
	"colmr/internal/sim"
)

var (
	spPrefixes = []string{"alpha/", "beta/", "gamma/", "delta/"}
	spKeys     = []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	spTenants  = []string{"acme", "blue", "crux"}
)

// spSchema mirrors the shared-scan property test's generator: random typed
// columns plus a clustered long "t" so elision tiers have real work.
func spSchema(rng *rand.Rand) *serde.Schema {
	kinds := []func() *serde.Schema{
		serde.Int, serde.Long, serde.Double, serde.String, serde.Bool,
	}
	n := 2 + rng.Intn(3)
	fields := make([]serde.Field, 0, n+2)
	for i := 0; i < n; i++ {
		fields = append(fields, serde.Field{Name: fmt.Sprintf("c%d", i), Type: kinds[rng.Intn(len(kinds))]()})
	}
	fields = append(fields,
		serde.Field{Name: "m", Type: serde.MapOf(serde.String())},
		serde.Field{Name: "t", Type: serde.Long()})
	return serde.RecordOf("Serve", fields...)
}

func spValue(rng *rand.Rand, s *serde.Schema) any {
	switch s.Kind {
	case serde.KindBool:
		return rng.Intn(2) == 0
	case serde.KindInt:
		return int32(rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		return int64(rng.Intn(1000))
	case serde.KindDouble:
		return float64(rng.Intn(100)) / 4
	case serde.KindString:
		return spPrefixes[rng.Intn(len(spPrefixes))] + string(rune('a'+rng.Intn(26)))
	case serde.KindMap:
		n := rng.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[spKeys[rng.Intn(len(spKeys))]] = spValue(rng, s.Elem)
		}
		return m
	}
	panic("unhandled kind")
}

func spLeaf(rng *rand.Rand, schema *serde.Schema) scan.Predicate {
	f := schema.Fields[rng.Intn(len(schema.Fields))]
	ops := []scan.Op{scan.OpEq, scan.OpNe, scan.OpLt, scan.OpLe, scan.OpGt, scan.OpGe}
	op := ops[rng.Intn(len(ops))]
	switch f.Type.Kind {
	case serde.KindBool:
		return scan.Cmp(f.Name, op, rng.Intn(2) == 0)
	case serde.KindInt:
		return scan.Cmp(f.Name, op, rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		if rng.Intn(2) == 0 {
			lo := rng.Intn(1000)
			return scan.Between(f.Name, lo, lo+rng.Intn(400))
		}
		return scan.Cmp(f.Name, op, int64(rng.Intn(1000)))
	case serde.KindDouble:
		return scan.Cmp(f.Name, op, float64(rng.Intn(100))/4)
	case serde.KindString:
		if rng.Intn(2) == 0 {
			return scan.HasPrefix(f.Name, spPrefixes[rng.Intn(len(spPrefixes))])
		}
		return scan.Cmp(f.Name, op, spPrefixes[rng.Intn(len(spPrefixes))]+string(rune('a'+rng.Intn(26))))
	case serde.KindMap:
		return scan.KeyExists(f.Name, spKeys[rng.Intn(len(spKeys))])
	}
	return scan.NotNull(f.Name)
}

func spPredicate(rng *rand.Rand, schema *serde.Schema, depth int) scan.Predicate {
	if depth <= 0 || rng.Intn(3) == 0 {
		return spLeaf(rng, schema)
	}
	kids := make([]scan.Predicate, 2)
	for i := range kids {
		kids[i] = spPredicate(rng, schema, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return scan.And(kids...)
	case 1:
		return scan.Or(kids...)
	default:
		return scan.Not(kids[0])
	}
}

var spLayouts = []core.LoadOptions{
	{Default: colfile.Options{Layout: colfile.Plain, StatsEvery: 20}},
	{Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20}},
	{Default: colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 2 << 10}},
}

// spJob builds one random query over the dataset: random predicate (possibly
// none), projection, materialization mode, and reduce shape — the same job
// space the shared-scan property test explores, now arriving asynchronously.
func spJob(rng *rand.Rand, schema *serde.Schema, dataset, out string) *mapred.Job {
	names := schema.FieldNames()
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	proj := append([]string(nil), names[:1+rng.Intn(len(names))]...)

	conf := mapred.JobConf{InputPaths: []string{dataset}, OutputPath: out}
	core.SetColumns(&conf, proj...)
	core.SetLazy(&conf, rng.Intn(2) == 0)
	if rng.Intn(5) > 0 {
		scan.SetPredicate(&conf, spPredicate(rng, schema, 2))
	}
	if rng.Intn(4) == 0 {
		scan.SetElision(&conf, false)
	}
	if rng.Intn(4) == 0 {
		scan.SetBloom(&conf, false)
	}
	if rng.Intn(3) == 0 {
		scan.SetVectorize(&conf, false)
	}

	job := &mapred.Job{
		Conf:  conf,
		Input: &core.InputFormat{},
		Mapper: mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			rec := v.(serde.Record)
			var sb strings.Builder
			for _, col := range proj {
				cv, err := rec.Get(col)
				if err != nil {
					return err
				}
				fmt.Fprintf(&sb, "%s=%v;", col, cv)
			}
			return emit(sb.String(), int64(1))
		}),
		Output: mapred.TextOutput{},
	}
	if rng.Intn(2) == 0 {
		sum := mapred.ReducerFunc(func(key any, values []any, emit mapred.Emit) error {
			var n int64
			for _, v := range values {
				n += v.(int64)
			}
			return emit(key, n)
		})
		job.Reducer = sum
		job.Conf.NumReducers = 1 + rng.Intn(3)
		if rng.Intn(2) == 0 {
			job.Combiner = sum
		}
	}
	return job
}

// spLogicalStats projects the counters that must be identical between solo
// and served execution; physical I/O is charged to the batch instead.
func spLogicalStats(st sim.TaskStats) [8]int64 {
	return [8]int64{
		st.RecordsProcessed, st.RecordsPruned, st.RecordsFiltered,
		st.GroupsPruned, st.BloomPruned, st.SplitsPruned, st.OutputRecords, st.OutputBytes,
	}
}

func spReadParts(t *testing.T, fs *hdfs.FileSystem, path string, parts int) []string {
	t.Helper()
	out := make([]string, parts)
	for p := 0; p < parts; p++ {
		name := fmt.Sprintf("%s/part-%05d", path, p)
		r, err := fs.Open(name, hdfs.AnyNode)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if r.Size() > 0 {
			data, err := fs.ReadFile(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			out[p] = string(data)
		}
		r.Close()
	}
	return out
}

func TestServeAdmissionInvarianceProperty(t *testing.T) {
	rounds := 8
	records := 200
	if testing.Short() {
		rounds = 3
	}
	rng := rand.New(rand.NewSource(20110906))
	windows := []float64{0, 0.05, 0.25}
	var sharedBatches, sharedReads, sharedQueries int64

	for round := 0; round < rounds; round++ {
		schema := spSchema(rng)
		opts := spLayouts[round%len(spLayouts)]
		opts.SplitRecords = int64(20 + rng.Intn(100))
		fs := hdfs.New(sim.SingleNode(), int64(round))
		w, err := core.NewWriter(fs, "/d", schema, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			rec := serde.NewRecord(schema)
			for _, f := range schema.Fields {
				if f.Name == "t" {
					err = rec.Set("t", int64(i)*1000/int64(records))
				} else {
					err = rec.Set(f.Name, spValue(rng, f.Type))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		window := windows[round%len(windows)]
		clock := &serve.ManualClock{}
		srvOpts := serve.Options{
			Window:     window,
			MaxBatches: 1 + rng.Intn(3),
			Clock:      clock,
		}
		if rng.Intn(2) == 0 {
			srvOpts.TenantQuota = 1 + rng.Intn(2)
		}
		if rng.Intn(2) == 0 {
			srvOpts.CacheBytes = 1 << 20
		}
		srv := serve.New(fs, srvOpts)

		// Build each query twice from one seed: a solo copy run alone up
		// front, and a served copy enqueued on a random arrival schedule —
		// mostly inside the window so batches actually form, with occasional
		// long gaps that force a window to expire between arrivals.
		nq := 3 + rng.Intn(4)
		soloJobs := make([]*mapred.Job, nq)
		servedJobs := make([]*mapred.Job, nq)
		tenants := make([]string, nq)
		for j := 0; j < nq; j++ {
			seed := rng.Int63()
			jr := rand.New(rand.NewSource(seed))
			soloJobs[j] = spJob(jr, schema, "/d", fmt.Sprintf("/solo/%d/%d", round, j))
			jr = rand.New(rand.NewSource(seed))
			servedJobs[j] = spJob(jr, schema, "/d", fmt.Sprintf("/served/%d/%d", round, j))
			tenants[j] = spTenants[rng.Intn(len(spTenants))]
		}

		soloRes := make([]*mapred.Result, nq)
		for j, job := range soloJobs {
			if soloRes[j], err = mapred.Run(fs, job); err != nil {
				t.Fatalf("round %d query %d solo: %v", round, j, err)
			}
		}

		now := 0.0
		tickets := make([]*serve.Ticket, nq)
		for j, job := range servedJobs {
			if j > 0 {
				if window > 0 && rng.Intn(4) == 0 {
					now += window * 1.5 // expire the forming window
				} else {
					now += window * float64(rng.Intn(3)) / 8
				}
				clock.Set(now)
			}
			if tickets[j], err = srv.Enqueue(tenants[j], job); err != nil {
				t.Fatalf("round %d query %d enqueue: %v", round, j, err)
			}
		}
		srv.Drain()

		for j, ticket := range tickets {
			pred := "none"
			if p := soloJobs[j].Conf.Scan.Predicate; p != nil {
				pred = p.String()
			}
			ctx := fmt.Sprintf("round %d query %d tenant %s window %g (pred %q)",
				round, j, tenants[j], window, pred)
			res, err := ticket.Wait()
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			solo := soloRes[j]
			parts := soloJobs[j].Conf.NumReducers
			if soloJobs[j].Reducer == nil || parts < 1 {
				parts = 1
			}
			soloOut := spReadParts(t, fs, soloJobs[j].Conf.OutputPath, parts)
			servedOut := spReadParts(t, fs, servedJobs[j].Conf.OutputPath, parts)
			for p := range soloOut {
				if soloOut[p] != servedOut[p] {
					t.Fatalf("%s: partition %d output differs:\nsolo:   %q\nserved: %q", ctx, p, soloOut[p], servedOut[p])
				}
			}
			if got, want := spLogicalStats(res.Total), spLogicalStats(solo.Total); got != want {
				t.Fatalf("%s: logical stats differ: served %v, solo %v", ctx, got, want)
			}
			if res.OutputRecords != solo.OutputRecords || res.ReduceGroups != solo.ReduceGroups {
				t.Fatalf("%s: reduce accounting differs: served %d/%d, solo %d/%d",
					ctx, res.OutputRecords, res.ReduceGroups, solo.OutputRecords, solo.ReduceGroups)
			}

			rep := ticket.Report()
			if rep.Tenant != tenants[j] || rep.BatchQueries < 1 {
				t.Fatalf("%s: bad report %+v", ctx, rep)
			}
			if window == 0 && rep.BatchQueries != 1 {
				t.Fatalf("%s: window 0 batched %d queries", ctx, rep.BatchQueries)
			}
			if rep.SealAt < rep.ArriveAt {
				t.Fatalf("%s: sealed at %g before arrival at %g", ctx, rep.SealAt, rep.ArriveAt)
			}
			if rep.Matched != solo.Total.RecordsProcessed {
				t.Fatalf("%s: report matched %d, solo %d", ctx, rep.Matched, solo.Total.RecordsProcessed)
			}
			if rep.BatchQueries > 1 {
				sharedQueries++
			}
		}

		// Attribution exactness: tenant rollups sum to the server totals.
		st := srv.Stats()
		if st.Queries != int64(nq) || st.Completed != int64(nq) || st.Failed != 0 {
			t.Fatalf("round %d: queries %d completed %d failed %d, want %d/%d/0",
				round, st.Queries, st.Completed, st.Failed, nq, nq)
		}
		if st.Queued != 0 || st.Forming != 0 || st.WaitingBatches != 0 || st.RunningBatches != 0 {
			t.Fatalf("round %d: drained server not idle: %+v", round, st)
		}
		if st.Wait.Count != nq || st.Latency.Count != nq {
			t.Fatalf("round %d: latency covers %d/%d queries, want %d", round, st.Wait.Count, st.Latency.Count, nq)
		}
		var sums struct{ q, m, cb, ch, bfc, sr, bs int64 }
		for _, ten := range st.Tenants {
			sums.q += ten.Queries
			sums.m += ten.Matched
			sums.cb += ten.ChargedBytes
			sums.ch += ten.CacheHits
			sums.bfc += ten.BytesFromCache
			sums.sr += ten.SharedReads
			sums.bs += ten.BytesSaved
		}
		if sums.q != st.Completed || sums.m != st.RecordsMatched ||
			sums.cb != st.ChargedBytes || sums.ch != st.CacheHits ||
			sums.bfc != st.BytesFromCache || sums.sr != st.SharedReads ||
			sums.bs != st.BytesSaved {
			t.Fatalf("round %d: tenant sums %+v do not match totals %+v", round, sums, st)
		}
		if window == 0 && st.SharedBatches != 0 {
			t.Fatalf("round %d: window 0 formed %d shared batches", round, st.SharedBatches)
		}
		sharedBatches += st.SharedBatches
		sharedReads += st.SharedReads
	}

	if sharedBatches == 0 || sharedQueries == 0 {
		t.Errorf("no shared batch across all rounds (batches %d, queries %d) — the window never merged arrivals",
			sharedBatches, sharedQueries)
	}
	if sharedReads == 0 {
		t.Error("no shared cursor reads across all rounds — batched queries never shared a scan")
	}
}
