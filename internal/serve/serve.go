package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/sim"
)

// ErrDraining is returned by Enqueue once Drain or Close has begun: the
// server finishes what it holds but admits nothing new.
var ErrDraining = errors.New("serve: server is draining")

// Options configures a Server.
type Options struct {
	// Window is the sharing window in modeled seconds: an arriving query
	// holds its forming batch open for this long so compatible arrivals
	// merge into it (admission-time batching). 0 disables batching — every
	// query is sealed into a batch of one the instant it is admitted, which
	// makes the served byte accounting exactly the sequential solo runs'.
	// The window is half-open: an arrival at exactly openAt+Window starts
	// the next batch.
	Window float64
	// MaxBatches bounds the batches in flight concurrently over the
	// session; sealed batches past the bound queue FIFO. Default 2.
	MaxBatches int
	// TenantQuota is the maximum queries one tenant may have in flight
	// (forming, sealed, or running). Arrivals past the quota wait in the
	// tenant's FIFO queue and are admitted round-robin across tenants as
	// capacity frees — one tenant's burst cannot starve the others.
	// 0 means no quota.
	TenantQuota int
	// CacheBytes is the budget of the session's cross-batch scan cache
	// (mapred.SessionOptions). 0 disables caching.
	CacheBytes int64
	// Clock is the modeled-time source; nil uses WallClock().
	Clock Clock
	// Model prices batch work into modeled run seconds; nil uses
	// sim.DefaultModel().
	Model *sim.CostModel
}

// Server is a continuous-admission scan service over one long-lived
// mapred.Session: queries arrive asynchronously from many tenants, an
// admission window merges arrival overlap into shared batches, a bounded
// worker pool keeps batches in flight, and per-tenant accounting tracks who
// consumed what. Sharing is invariant: a served query returns byte-identical
// output and solo-exact logical counters versus running it alone (the
// admission-invariance property test).
type Server struct {
	opts    Options
	clock   Clock
	model   sim.CostModel
	session *mapred.Session

	events   chan event
	stopped  chan struct{}
	draining atomic.Bool

	mu       sync.Mutex
	accepted int64
	tenants  map[string]*TenantStats
	totals   totals
	records  []*batchRecord
	// live gauges, published by the dispatcher after every event
	gQueued, gForming, gWaiting, gRunning int
}

type totals struct {
	completed, failed         int64
	batches, sharedBatches    int64
	chargedBytes, bytesSaved  int64
	sharedReads               int64
	cacheHits, bytesFromCache int64
	matched                   int64
}

// Ticket is the handle Enqueue returns: it resolves when the query's batch
// completes.
type Ticket struct {
	tenant string
	done   chan struct{}
	res    *mapred.Result
	err    error
	report Report
}

// Wait blocks until the query has been served and returns its result — the
// same *mapred.Result a solo Session.Run would have produced, per-job
// logical counters included.
func (t *Ticket) Wait() (*mapred.Result, error) {
	<-t.done
	return t.res, t.err
}

// Done returns a channel closed when the query has been served.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Report returns the serving-side account of the query: batch membership,
// window wait, modeled run time, and the query's attributed share of the
// batch's physical work. Valid only after Wait/Done.
func (t *Ticket) Report() Report { return t.report }

type query struct {
	tenant   string
	job      *mapred.Job
	ticket   *Ticket
	arriveAt float64
	admitAt  float64
}

type batch struct {
	seq         int
	members     []*query
	openAt      float64
	deadline    float64
	sealAt      float64
	cancelTimer func()
	br          *mapred.BatchResult
	err         error
	runSeconds  float64
}

type eventKind int

const (
	evArrive eventKind = iota
	evTick
	evFlush
	evDrain
	evDone
)

type event struct {
	kind eventKind
	at   float64
	q    *query
	b    *batch
	ack  chan struct{}
}

// New starts a server over the filesystem. The returned server is live:
// Enqueue admits immediately. Stop it with Drain (or Close).
func New(fs *hdfs.FileSystem, opts Options) *Server {
	if opts.MaxBatches < 1 {
		opts.MaxBatches = 2
	}
	if opts.Window < 0 {
		opts.Window = 0
	}
	clock := opts.Clock
	if clock == nil {
		clock = WallClock()
	}
	model := sim.DefaultModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	s := &Server{
		opts:    opts,
		clock:   clock,
		model:   model,
		session: mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: opts.CacheBytes}),
		events:  make(chan event, 64),
		stopped: make(chan struct{}),
		tenants: make(map[string]*TenantStats),
	}
	go s.loop()
	return s
}

// Session exposes the server's underlying session (cache usage inspection,
// Invalidate after dataset reloads).
func (s *Server) Session() *mapred.Session { return s.session }

// FS returns the filesystem the server scans, for planning (EXPLAIN)
// against the same data the queued jobs will run over.
func (s *Server) FS() *hdfs.FileSystem { return s.session.FS() }

// Model returns the server's cost model — the one its reports price scans
// with, so EXPLAIN estimates and serving reports share units.
func (s *Server) Model() sim.CostModel { return s.model }

// Committer is a streaming writer that announces manifest commits —
// structurally, ingest.Ingester. Each callback receives the committed
// generation and the directories that commit retired, and runs on the
// committing goroutine.
type Committer interface {
	OnCommit(func(gen int64, retired []string))
}

// ServeLive subscribes the server to a continuously-written dataset: when
// a commit retires directories (compaction replacing fresh partitions),
// their cached regions and vectors are dropped from the session caches.
// Correctness needs no hook — cache keys carry file generations and
// manifests are immutable, so a query racing a commit simply answers
// against the previous complete generation — this is purely keeping the
// cache working set aligned with the live layout while queries and
// ingestion run concurrently.
func (s *Server) ServeLive(src Committer) {
	src.OnCommit(func(_ int64, retired []string) {
		for _, dir := range retired {
			s.session.Invalidate(dir)
		}
	})
}

// Enqueue admits one query for the tenant. The job is validated up front
// and owned by the server from then on (its conf gains the session cache);
// results arrive through the ticket. Queries of one tenant are served in
// arrival order relative to each other.
func (s *Server) Enqueue(tenant string, job *mapred.Job) (*Ticket, error) {
	if job == nil {
		return nil, fmt.Errorf("serve: nil job")
	}
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	t := &Ticket{tenant: tenant, done: make(chan struct{})}
	q := &query{tenant: tenant, job: job, ticket: t, arriveAt: s.clock.Now()}
	select {
	case s.events <- event{kind: evArrive, at: q.arriveAt, q: q}:
		return t, nil
	case <-s.stopped:
		return nil, ErrDraining
	}
}

// Flush seals the forming admission window immediately, without waiting for
// its deadline. It returns once the seal has been processed (the batch may
// still be queued or running).
func (s *Server) Flush() {
	ack := make(chan struct{})
	select {
	case s.events <- event{kind: evFlush, at: s.clock.Now(), ack: ack}:
		select {
		case <-ack:
		case <-s.stopped:
		}
	case <-s.stopped:
	}
}

// Drain stops admission and blocks until every accepted query has been
// served: the forming window seals at once, quota-waiting queries are
// admitted (still batched together) as capacity frees, and in-flight
// batches run to completion. After Drain the server is stopped; Enqueue
// returns ErrDraining.
func (s *Server) Drain() {
	s.draining.Store(true)
	ack := make(chan struct{})
	select {
	case s.events <- event{kind: evDrain, at: s.clock.Now(), ack: ack}:
		select {
		case <-ack:
		case <-s.stopped:
		}
	case <-s.stopped:
	}
}

// Close is Drain: graceful shutdown is the only shutdown.
func (s *Server) Close() error {
	s.Drain()
	return nil
}

// Draining reports whether Drain/Close has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// loop is the dispatcher: the single goroutine that owns admission state.
// Every decision — window open/seal, round-robin admission, quota checks,
// slot dispatch — happens here in event order, which is what makes serving
// deterministic under a ManualClock: admission is a pure function of the
// arrival sequence.
func (s *Server) loop() {
	var (
		queues   = make(map[string][]*query) // quota-waiting, FIFO per tenant
		order    []string                    // tenants in first-seen order
		rr       int                         // round-robin cursor into order
		inflight = make(map[string]int)      // per-tenant queries forming/sealed/running
		forming  *batch
		runQ     []*batch
		running  int
		now      float64
		sealSeq  int
		queued   int
		draining bool
		acks     []chan struct{}
	)

	seal := func(at float64) {
		b := forming
		forming = nil
		if b.cancelTimer != nil {
			b.cancelTimer()
		}
		if at > b.deadline {
			at = b.deadline // lazily observed deadlines seal at the deadline
		}
		b.sealAt = at
		b.seq = sealSeq
		sealSeq++
		s.recordSeal(b)
		runQ = append(runQ, b)
	}

	// admit moves quota-waiting queries into the forming window, round-robin
	// across tenants so concurrent bursts interleave fairly.
	admit := func(at float64) {
		for len(order) > 0 {
			var q *query
			for tries := 0; tries < len(order); tries++ {
				t := order[(rr+tries)%len(order)]
				if len(queues[t]) == 0 {
					continue
				}
				if s.opts.TenantQuota > 0 && inflight[t] >= s.opts.TenantQuota {
					continue
				}
				q = queues[t][0]
				queues[t] = queues[t][1:]
				rr = (rr + tries + 1) % len(order)
				break
			}
			if q == nil {
				return
			}
			queued--
			if forming == nil {
				forming = &batch{openAt: at, deadline: at + s.opts.Window}
				if s.opts.Window > 0 && !draining {
					b := forming
					forming.cancelTimer = s.clock.AfterFunc(b.deadline, func() {
						select {
						case s.events <- event{kind: evTick, at: b.deadline, b: b}:
						case <-s.stopped:
						}
					})
				}
			}
			q.admitAt = at
			forming.members = append(forming.members, q)
			inflight[q.tenant]++
			if s.opts.Window == 0 {
				seal(at)
			}
		}
	}

	dispatch := func() {
		for running < s.opts.MaxBatches && len(runQ) > 0 {
			b := runQ[0]
			runQ = runQ[1:]
			running++
			go s.runBatch(b)
		}
	}

	// progress runs one admission step: seal an expired window, admit what
	// quota allows, and — while draining — seal immediately rather than
	// waiting out a window no future arrival will close.
	progress := func(at float64) {
		if forming != nil && at >= forming.deadline {
			seal(forming.deadline)
		}
		admit(at)
		if draining && forming != nil {
			seal(at)
		}
		dispatch()
	}

	idle := func() bool {
		return forming == nil && running == 0 && len(runQ) == 0 && queued == 0
	}

	for ev := range s.events {
		if ev.at > now {
			now = ev.at
		}
		switch ev.kind {
		case evArrive:
			q := ev.q
			if draining {
				q.ticket.err = ErrDraining
				close(q.ticket.done)
				break
			}
			if _, seen := queues[q.tenant]; !seen {
				order = append(order, q.tenant)
			}
			queues[q.tenant] = append(queues[q.tenant], q)
			queued++
			s.mu.Lock()
			s.accepted++
			s.mu.Unlock()
			progress(now)
		case evTick:
			// A window timer; meaningful only if its batch is still forming.
			if forming == ev.b {
				seal(forming.deadline)
			}
			progress(now)
		case evFlush:
			if forming != nil {
				seal(now)
			}
			dispatch()
			close(ev.ack)
		case evDrain:
			draining = true
			acks = append(acks, ev.ack)
			progress(now)
		case evDone:
			running--
			s.resolve(ev.b)
			for _, q := range ev.b.members {
				inflight[q.tenant]--
			}
			progress(now)
		}

		s.mu.Lock()
		s.gQueued = queued
		if forming != nil {
			s.gForming = len(forming.members)
		} else {
			s.gForming = 0
		}
		s.gWaiting = len(runQ)
		s.gRunning = running
		s.mu.Unlock()

		if draining && idle() {
			for _, ack := range acks {
				close(ack)
			}
			close(s.stopped)
			return
		}
	}
}

// runBatch executes one sealed batch on the shared session and reports
// completion back to the dispatcher. Jobs run in admission order, so
// BatchResult.Results aligns with batch.members.
func (s *Server) runBatch(b *batch) {
	jobs := make([]*mapred.Job, len(b.members))
	for i, q := range b.members {
		jobs[i] = q.job
	}
	b.br, b.err = s.session.RunBatch(jobs...)
	if b.err == nil {
		b.runSeconds = s.batchSeconds(b.br)
	}
	select {
	case s.events <- event{kind: evDone, at: s.clock.Now(), b: b}:
	case <-s.stopped:
	}
}

// batchSeconds prices a batch's modeled service time: the shared cursor
// work (charged once) plus every member's own map- and reduce-side work,
// run as one single-node scan. Linear pricing means a batch of one costs
// exactly its solo run.
func (s *Server) batchSeconds(br *mapred.BatchResult) float64 {
	var st sim.TaskStats
	st.Add(br.Shared)
	for _, r := range br.Results {
		if r == nil {
			continue
		}
		st.Add(r.Total)
		st.Add(r.ReduceStats)
	}
	return s.model.ScanSeconds(st)
}
