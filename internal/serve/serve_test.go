package serve_test

// Unit tests for the server's admission mechanics: the no-batching identity
// at Window 0, quota-bounded round-robin fairness, Flush/Drain semantics,
// and the wall-clock timer path the property test (ManualClock) never arms.

import (
	"fmt"
	"testing"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/serve"
	"colmr/internal/sim"
)

// svFixture writes a small clustered dataset at /d: "t" monotone 0..n-1 so
// split-directories cover disjoint ranges, "s" a projectable payload.
func svFixture(t *testing.T, seed int64) *hdfs.FileSystem {
	t.Helper()
	const records = 120
	fs := hdfs.New(sim.SingleNode(), seed)
	schema := serde.RecordOf("R",
		serde.Field{Name: "t", Type: serde.Long()},
		serde.Field{Name: "s", Type: serde.String()})
	w, err := core.NewWriter(fs, "/d", schema, core.LoadOptions{SplitRecords: 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		rec := serde.NewRecord(schema)
		if err := rec.Set("t", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := rec.Set("s", fmt.Sprintf("s%03d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return fs
}

// svJob is a counting scan over the fixture with an upper bound on "t".
func svJob(hi int64) *mapred.Job {
	return core.ScanDataset("/d").
		Columns("s").
		Where(scan.Le("t", hi)).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
}

func svCharged(r *mapred.Result) int64 {
	return r.Total.IO.TotalChargedBytes() + r.ReduceStats.IO.TotalChargedBytes()
}

// Window 0 is the no-batching identity: every query seals into a batch of
// one and the server's byte accounting equals the sequential solo runs'.
func TestServeWindowZeroMatchesSolo(t *testing.T) {
	fs := svFixture(t, 1)
	bounds := []int64{20, 50, 50, 110}

	var soloCharged int64
	soloMatched := make([]int64, len(bounds))
	for i, hi := range bounds {
		res, err := mapred.Run(fs, svJob(hi))
		if err != nil {
			t.Fatal(err)
		}
		soloCharged += svCharged(res)
		soloMatched[i] = res.Total.RecordsProcessed
	}

	clock := &serve.ManualClock{}
	srv := serve.New(fs, serve.Options{Window: 0, Clock: clock})
	tickets := make([]*serve.Ticket, len(bounds))
	for i, hi := range bounds {
		var err error
		if tickets[i], err = srv.Enqueue("solo", svJob(hi)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()

	for i, ticket := range tickets {
		res, err := ticket.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Total.RecordsProcessed != soloMatched[i] {
			t.Errorf("query %d matched %d, solo %d", i, res.Total.RecordsProcessed, soloMatched[i])
		}
		if rep := ticket.Report(); rep.BatchQueries != 1 {
			t.Errorf("query %d batched with %d queries at window 0", i, rep.BatchQueries)
		}
	}
	st := srv.Stats()
	if st.Batches != int64(len(bounds)) || st.SharedBatches != 0 {
		t.Errorf("batches %d shared %d, want %d/0", st.Batches, st.SharedBatches, len(bounds))
	}
	if st.ChargedBytes != soloCharged {
		t.Errorf("served charged %d bytes, sequential solo runs charged %d", st.ChargedBytes, soloCharged)
	}
}

// A window with overlapping arrivals must charge less than the solo runs —
// and attribute the savings.
func TestServeWindowShares(t *testing.T) {
	fs := svFixture(t, 2)
	bounds := []int64{40, 60, 80}

	var soloCharged int64
	for _, hi := range bounds {
		res, err := mapred.Run(fs, svJob(hi))
		if err != nil {
			t.Fatal(err)
		}
		soloCharged += svCharged(res)
	}

	clock := &serve.ManualClock{}
	srv := serve.New(fs, serve.Options{Window: 0.1, Clock: clock})
	tickets := make([]*serve.Ticket, len(bounds))
	for i, hi := range bounds {
		var err error
		if tickets[i], err = srv.Enqueue(fmt.Sprintf("tenant%d", i), svJob(hi)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()

	for _, ticket := range tickets {
		if _, err := ticket.Wait(); err != nil {
			t.Fatal(err)
		}
		if rep := ticket.Report(); rep.BatchQueries != len(bounds) {
			t.Errorf("batch served %d queries, want %d", rep.BatchQueries, len(bounds))
		}
	}
	st := srv.Stats()
	if st.Batches != 1 || st.SharedBatches != 1 {
		t.Errorf("batches %d shared %d, want 1/1", st.Batches, st.SharedBatches)
	}
	if st.ChargedBytes >= soloCharged {
		t.Errorf("shared batch charged %d bytes, solo runs %d — sharing saved nothing", st.ChargedBytes, soloCharged)
	}
	if st.SharedReads == 0 || st.BytesSaved == 0 {
		t.Errorf("sharedReads %d bytesSaved %d, want both > 0", st.SharedReads, st.BytesSaved)
	}
}

// Quota fairness: tenant A's burst of 4 and tenant B's 2 with TenantQuota 1
// and one batch slot must interleave round-robin — {A,B}, {A,B}, {A}, {A} —
// instead of serving A's whole burst first.
func TestServeQuotaRoundRobin(t *testing.T) {
	fs := svFixture(t, 3)
	clock := &serve.ManualClock{}
	srv := serve.New(fs, serve.Options{
		Window:      0.5,
		MaxBatches:  1,
		TenantQuota: 1,
		Clock:       clock,
	})

	var tickets []*serve.Ticket
	enq := func(tenant string, hi int64) {
		tk, err := srv.Enqueue(tenant, svJob(hi))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	enq("a", 30)
	enq("a", 50)
	enq("a", 70)
	enq("a", 90)
	enq("b", 40)
	enq("b", 60)
	srv.Drain()

	wantBatchSize := map[int]int{0: 2, 1: 2, 2: 1, 3: 1, 4: 2, 5: 2}
	for i, ticket := range tickets {
		if _, err := ticket.Wait(); err != nil {
			t.Fatal(err)
		}
		if rep := ticket.Report(); rep.BatchQueries != wantBatchSize[i] {
			t.Errorf("query %d served in a batch of %d, want %d", i, rep.BatchQueries, wantBatchSize[i])
		}
	}
	st := srv.Stats()
	if st.Batches != 4 || st.SharedBatches != 2 {
		t.Errorf("batches %d shared %d, want 4/2", st.Batches, st.SharedBatches)
	}
	if a := st.Tenants["a"]; a.Queries != 4 {
		t.Errorf("tenant a served %d queries, want 4", a.Queries)
	}
	if b := st.Tenants["b"]; b.Queries != 2 {
		t.Errorf("tenant b served %d queries, want 2", b.Queries)
	}
}

// Flush seals a window that would otherwise stay open (huge window, manual
// clock); Drain stops admission and Enqueue starts failing fast.
func TestServeFlushAndDrain(t *testing.T) {
	fs := svFixture(t, 4)
	clock := &serve.ManualClock{}
	srv := serve.New(fs, serve.Options{Window: 100, Clock: clock})

	t1, err := srv.Enqueue("x", svJob(30))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Enqueue("y", svJob(60))
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	if rep := t1.Report(); rep.BatchQueries != 2 {
		t.Errorf("flushed batch served %d queries, want 2", rep.BatchQueries)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := srv.Enqueue("x", svJob(30)); err != serve.ErrDraining {
		t.Errorf("Enqueue after Drain: %v, want ErrDraining", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Drain: %v", err)
	}
}

func TestServeEnqueueRejectsBadJobs(t *testing.T) {
	fs := svFixture(t, 5)
	srv := serve.New(fs, serve.Options{})
	defer srv.Close()
	if _, err := srv.Enqueue("x", nil); err == nil {
		t.Error("Enqueue(nil) succeeded")
	}
	if _, err := srv.Enqueue("x", &mapred.Job{}); err == nil {
		t.Error("Enqueue of an invalid job succeeded")
	}
}

// The wall-clock path: with a real (tiny) window and no Flush, the window
// timer itself must seal the batch and resolve the tickets.
func TestServeWallClockTimerSeals(t *testing.T) {
	fs := svFixture(t, 6)
	srv := serve.New(fs, serve.Options{Window: 0.005})
	defer srv.Close()

	t1, err := srv.Enqueue("x", svJob(30))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Enqueue("y", svJob(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	if rep := t1.Report(); rep.BatchQueries < 1 {
		t.Errorf("bad report after timer seal: %+v", rep)
	}
}
