package serve

import (
	"colmr/internal/sim"
)

// Report is the serving-side account of one query, attached to its ticket
// at completion.
//
// Physical work a shared batch charged once (BatchResult.Shared) is
// attributed to members by even split — shared bytes divided by the member
// count, the remainder going to the earliest-admitted members — so per-query
// and per-tenant charges always sum exactly to what the server charged.
// Logical counters (Matched, pruning) are the query's own, solo-exact.
type Report struct {
	Tenant string `json:"tenant"`
	// BatchQueries is how many queries the batch served; >1 means this
	// query shared its scan.
	BatchQueries int `json:"batchQueries"`
	// ArriveAt and SealAt bound the admission window wait in modeled
	// seconds; RunSeconds is the batch's modeled service time. Queue-aware
	// percentiles (including time waiting for a batch slot) are on
	// Server.Stats.
	ArriveAt   float64 `json:"arriveAt"`
	SealAt     float64 `json:"sealAt"`
	RunSeconds float64 `json:"runSeconds"`
	// Matched is the records delivered to the query's map function.
	Matched int64 `json:"matched"`
	// ChargedBytes is the query's own physical traffic plus its share of
	// the batch's shared traffic.
	ChargedBytes   int64 `json:"chargedBytes"`
	CacheHits      int64 `json:"cacheHits"`
	BytesFromCache int64 `json:"bytesFromCache"`
	SharedReads    int64 `json:"sharedReads"`
	BytesSaved     int64 `json:"bytesSaved"`
}

// TenantStats aggregates one tenant's served queries.
type TenantStats struct {
	Queries        int64 `json:"queries"`
	Failed         int64 `json:"failed"`
	Matched        int64 `json:"matched"`
	ChargedBytes   int64 `json:"chargedBytes"`
	CacheHits      int64 `json:"cacheHits"`
	BytesFromCache int64 `json:"bytesFromCache"`
	SharedReads    int64 `json:"sharedReads"`
	BytesSaved     int64 `json:"bytesSaved"`
	// Wait and Latency summarize the tenant's modeled admission-to-start
	// and admission-to-finish times (completed batches whose predecessors
	// have also completed; final after Drain).
	Wait    sim.LatencySummary `json:"wait"`
	Latency sim.LatencySummary `json:"latency"`
}

// Stats is a live snapshot of the server.
type Stats struct {
	// Queries is arrivals accepted; Completed of them have been served,
	// Failed of them by a batch error.
	Queries   int64 `json:"queries"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Batches is completed batches; SharedBatches of them served more than
	// one query.
	Batches       int64 `json:"batches"`
	SharedBatches int64 `json:"sharedBatches"`
	// Live gauges: quota-waiting queries, queries in the open window,
	// sealed batches awaiting a slot, batches running.
	Queued         int  `json:"queued"`
	Forming        int  `json:"forming"`
	WaitingBatches int  `json:"waitingBatches"`
	RunningBatches int  `json:"runningBatches"`
	Draining       bool `json:"draining"`

	// Work totals across completed batches (shared physical work counted
	// once). Per-tenant attributions sum exactly to these.
	ChargedBytes   int64 `json:"chargedBytes"`
	BytesSaved     int64 `json:"bytesSaved"`
	SharedReads    int64 `json:"sharedReads"`
	CacheHits      int64 `json:"cacheHits"`
	BytesFromCache int64 `json:"bytesFromCache"`
	RecordsMatched int64 `json:"recordsMatched"`

	// Modeled latency over served queries: Wait is arrival → batch start
	// (window + queueing), Run is batch service time, Latency is arrival →
	// batch finish. Computed on the MaxBatches-server timeline in seal
	// order, so the numbers cover the completed prefix and are final after
	// Drain.
	Wait    sim.LatencySummary `json:"wait"`
	Run     sim.LatencySummary `json:"run"`
	Latency sim.LatencySummary `json:"latency"`

	Tenants map[string]TenantStats `json:"tenants"`
}

// batchRecord is the completed-batch log entry the modeled timeline is
// computed from, in seal order.
type batchRecord struct {
	sealAt     float64
	runSeconds float64
	done       bool
	members    []memberSample
}

type memberSample struct {
	tenant   string
	arriveAt float64
}

// recordSeal logs a sealed batch so the timeline knows it exists even
// before it completes (the latency prefix stops at the first unfinished
// seal).
func (s *Server) recordSeal(b *batch) {
	rec := &batchRecord{sealAt: b.sealAt, members: make([]memberSample, len(b.members))}
	for i, q := range b.members {
		rec.members[i] = memberSample{tenant: q.tenant, arriveAt: q.arriveAt}
	}
	s.mu.Lock()
	if b.seq != len(s.records) {
		panic("serve: seal order out of step")
	}
	s.records = append(s.records, rec)
	s.mu.Unlock()
}

// evenShare splits total across n members: member i gets the floor share
// plus one unit of the remainder if i is early enough. Shares always sum
// exactly to total.
func evenShare(total int64, n, i int) int64 {
	share := total / int64(n)
	if int64(i) < total%int64(n) {
		share++
	}
	return share
}

// resolve publishes a completed batch: per-query reports and tickets,
// tenant rollups, and server totals. Called from the dispatcher, so tenant
// accounting needs no internal ordering decisions.
func (s *Server) resolve(b *batch) {
	n := len(b.members)
	var shared sim.TaskStats
	if b.br != nil {
		shared = b.br.Shared
	}
	sharedCharged := shared.IO.TotalChargedBytes()

	s.mu.Lock()
	rec := s.records[b.seq]
	rec.done = true
	rec.runSeconds = b.runSeconds
	s.totals.batches++
	if n > 1 {
		s.totals.sharedBatches++
	}
	for i, q := range b.members {
		t := s.tenants[q.tenant]
		if t == nil {
			t = &TenantStats{}
			s.tenants[q.tenant] = t
		}
		t.Queries++
		s.totals.completed++
		rep := Report{
			Tenant:       q.tenant,
			BatchQueries: n,
			ArriveAt:     q.arriveAt,
			SealAt:       b.sealAt,
			RunSeconds:   b.runSeconds,
		}
		if b.err != nil {
			t.Failed++
			s.totals.failed++
		} else {
			r := b.br.Results[i]
			rep.Matched = r.Total.RecordsProcessed
			rep.ChargedBytes = r.Total.IO.TotalChargedBytes() + r.ReduceStats.IO.TotalChargedBytes() +
				evenShare(sharedCharged, n, i)
			rep.CacheHits = r.Total.CacheHits + r.ReduceStats.CacheHits + evenShare(shared.CacheHits, n, i)
			rep.BytesFromCache = r.Total.BytesFromCache + r.ReduceStats.BytesFromCache + evenShare(shared.BytesFromCache, n, i)
			rep.SharedReads = evenShare(shared.SharedReads, n, i)
			rep.BytesSaved = evenShare(shared.BytesSaved, n, i)

			t.Matched += rep.Matched
			t.ChargedBytes += rep.ChargedBytes
			t.CacheHits += rep.CacheHits
			t.BytesFromCache += rep.BytesFromCache
			t.SharedReads += rep.SharedReads
			t.BytesSaved += rep.BytesSaved

			s.totals.matched += rep.Matched
			s.totals.chargedBytes += rep.ChargedBytes
			s.totals.cacheHits += rep.CacheHits
			s.totals.bytesFromCache += rep.BytesFromCache
			s.totals.sharedReads += rep.SharedReads
			s.totals.bytesSaved += rep.BytesSaved
		}
		q.ticket.report = rep
	}
	s.mu.Unlock()

	// Resolve tickets outside the stats lock; waiters may call Stats.
	for i, q := range b.members {
		if b.err != nil {
			q.ticket.err = b.err
		} else {
			q.ticket.res = b.br.Results[i]
		}
		close(q.ticket.done)
	}
}

// Stats snapshots the server: counters, gauges, per-tenant rollups, and the
// modeled latency distributions. Latencies replay the completed prefix of
// the seal-order timeline against MaxBatches modeled servers — greedy
// earliest-free-slot assignment — so wait includes both the admission
// window and any queueing behind earlier batches.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()

	st := Stats{
		Queries:        s.accepted,
		Completed:      s.totals.completed,
		Failed:         s.totals.failed,
		Batches:        s.totals.batches,
		SharedBatches:  s.totals.sharedBatches,
		Queued:         s.gQueued,
		Forming:        s.gForming,
		WaitingBatches: s.gWaiting,
		RunningBatches: s.gRunning,
		Draining:       s.draining.Load(),
		ChargedBytes:   s.totals.chargedBytes,
		BytesSaved:     s.totals.bytesSaved,
		SharedReads:    s.totals.sharedReads,
		CacheHits:      s.totals.cacheHits,
		BytesFromCache: s.totals.bytesFromCache,
		RecordsMatched: s.totals.matched,
		Tenants:        make(map[string]TenantStats, len(s.tenants)),
	}

	var wait, run, latency sim.Latency
	perTenant := make(map[string]*[2]sim.Latency) // wait, latency
	slotFree := make([]float64, s.opts.MaxBatches)
	for _, rec := range s.records {
		if !rec.done {
			break // timeline needs every predecessor's duration
		}
		slot := 0
		for k := 1; k < len(slotFree); k++ {
			if slotFree[k] < slotFree[slot] {
				slot = k
			}
		}
		start := rec.sealAt
		if slotFree[slot] > start {
			start = slotFree[slot]
		}
		finish := start + rec.runSeconds
		slotFree[slot] = finish
		for _, m := range rec.members {
			wait.Observe(start - m.arriveAt)
			run.Observe(rec.runSeconds)
			latency.Observe(finish - m.arriveAt)
			pt := perTenant[m.tenant]
			if pt == nil {
				pt = &[2]sim.Latency{}
				perTenant[m.tenant] = pt
			}
			pt[0].Observe(start - m.arriveAt)
			pt[1].Observe(finish - m.arriveAt)
		}
	}
	st.Wait = wait.Summary()
	st.Run = run.Summary()
	st.Latency = latency.Summary()

	for name, t := range s.tenants {
		out := *t
		if pt := perTenant[name]; pt != nil {
			out.Wait = pt[0].Summary()
			out.Latency = pt[1].Summary()
		}
		st.Tenants[name] = out
	}
	return st
}
