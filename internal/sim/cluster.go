// Package sim provides the deterministic cluster cost model used to price
// storage-format experiments.
//
// The reproduction strategy (see DESIGN.md) separates *work* from *time*:
// format implementations execute for real on real bytes and accumulate
// counters (bytes read locally/remotely, seeks, bytes deserialized per type,
// records materialized, bytes decompressed per codec). This package converts
// those counters into simulated wall-clock seconds using a cost model
// calibrated against the paper's cluster (VLDB 2011, Section 6.1) and its
// Figure 8 deserialization-rate measurements. Pricing is pure arithmetic, so
// experiment output is identical on every host machine.
package sim

// ClusterConfig describes the modeled Hadoop cluster. The defaults mirror
// the paper's experimental setup: 40 worker nodes, each with 8 cores, 6 map
// slots, 1 reduce slot, four SATA data disks, connected by 1 Gbit ethernet.
type ClusterConfig struct {
	// Nodes is the number of worker (datanode + tasktracker) machines.
	Nodes int
	// SlotsPerNode is the number of concurrent map tasks per node.
	SlotsPerNode int
	// ReducersPerNode is the number of concurrent reduce tasks per node.
	ReducersPerNode int
	// DisksPerNode is the number of data disks a datanode spreads blocks
	// across.
	DisksPerNode int
	// DiskBandwidth is the sequential read bandwidth of one disk in
	// bytes/second. SATA 1.0 disks of the paper's era sustain roughly
	// 75 MB/s, but effective per-stream throughput under Hadoop (JVM,
	// checksumming, filesystem overhead) is lower; DefaultCluster uses a
	// calibrated effective value.
	DiskBandwidth float64
	// SeekTime is the cost in seconds of one disk seek (arm movement plus
	// rotational latency).
	SeekTime float64
	// NetBandwidth is the usable point-to-point network bandwidth in
	// bytes/second (1 Gbit ethernet minus protocol overhead).
	NetBandwidth float64
	// TransferUnit is the I/O transfer size in bytes
	// (Hadoop's io.file.buffer.size; the paper uses 128 KB). Disk reads
	// are charged in multiples of this unit.
	TransferUnit int64
	// BlockSize is the HDFS block size in bytes (64 MB in the paper).
	BlockSize int64
	// Replication is the HDFS replication factor.
	Replication int
	// JobOverhead is fixed per-job scheduling/startup/teardown time in
	// seconds (JVM spawning, heartbeats). The paper's total-time minus
	// map-time gap for jobs with tiny map output is 50-60 s.
	JobOverhead float64
}

// DefaultCluster returns the configuration of the paper's 40-node cluster
// (Section 6.1) with calibrated effective rates.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Nodes:           40,
		SlotsPerNode:    6,
		ReducersPerNode: 1,
		DisksPerNode:    4,
		DiskBandwidth:   75 * MB,
		SeekTime:        0.006,
		// Effective 1 Gbit ethernet under the many-concurrent-flow,
		// incast-prone traffic of a full map wave (nominal 119 MB/s).
		NetBandwidth: 40 * MB,
		TransferUnit: 128 * KB,
		BlockSize:    64 * MB,
		Replication:  3,
		JobOverhead:  52,
	}
}

// SingleNode returns a one-node configuration used for the paper's
// single-machine microbenchmarks (Figure 7, Figure 9, Figure 11). Scans in
// those experiments are single-threaded, so SlotsPerNode is 1.
func SingleNode() ClusterConfig {
	c := DefaultCluster()
	c.Nodes = 1
	c.SlotsPerNode = 1
	c.ReducersPerNode = 1
	return c
}

// Byte-size constants.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
)

// MapSlots returns the total number of map slots in the cluster.
func (c ClusterConfig) MapSlots() int { return c.Nodes * c.SlotsPerNode }

// PerSlotDiskBandwidth returns the share of aggregate node disk bandwidth
// available to one map slot, in bytes/second. Hadoop of the paper's era did
// not overlap I/O with computation within a task, and concurrent slots
// statically share the node's disks.
func (c ClusterConfig) PerSlotDiskBandwidth() float64 {
	slots := c.SlotsPerNode
	if slots < 1 {
		slots = 1
	}
	agg := c.DiskBandwidth * float64(c.DisksPerNode)
	per := agg / float64(slots)
	// A single stream cannot exceed one disk's bandwidth.
	if per > c.DiskBandwidth {
		per = c.DiskBandwidth
	}
	return per
}

// PerSlotNetBandwidth returns the share of node network bandwidth available
// to one map slot for remote block reads.
func (c ClusterConfig) PerSlotNetBandwidth() float64 {
	slots := c.SlotsPerNode
	if slots < 1 {
		slots = 1
	}
	return c.NetBandwidth / float64(slots)
}
