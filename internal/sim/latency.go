package sim

import (
	"math"
	"sort"
)

// Latency accumulates modeled-time samples (seconds) and reports order
// statistics. It is the serving-side analogue of TaskStats: where TaskStats
// counts work, Latency distributes *when* that work completed in modeled
// time — the admission-window and queueing delays the scan server's sweep
// reports as p50/p99.
//
// Samples are kept exactly (serving experiments observe thousands of
// queries, not millions), so quantiles are true order statistics rather
// than sketch estimates and a sweep's recorded numbers reproduce bit-for-bit
// from the same arrival sequence.
type Latency struct {
	samples []float64
	sorted  bool
}

// Observe records one sample, in seconds of modeled time.
func (l *Latency) Observe(s float64) {
	l.samples = append(l.samples, s)
	l.sorted = false
}

// Count returns the number of samples observed.
func (l *Latency) Count() int { return len(l.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank rule,
// or 0 with no samples.
func (l *Latency) Quantile(q float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	rank := int(math.Ceil(q*float64(len(l.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Merge folds o's samples into l.
func (l *Latency) Merge(o *Latency) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	l.samples = append(l.samples, o.samples...)
	l.sorted = false
}

// Summary snapshots the distribution into plain numbers.
func (l *Latency) Summary() LatencySummary {
	s := LatencySummary{Count: len(l.samples)}
	if s.Count == 0 {
		return s
	}
	var sum float64
	for _, v := range l.samples {
		sum += v
	}
	s.Mean = sum / float64(s.Count)
	s.P50 = l.Quantile(0.50)
	s.P95 = l.Quantile(0.95)
	s.P99 = l.Quantile(0.99)
	s.Max = l.samples[len(l.samples)-1] // Quantile just sorted them
	return s
}

// LatencySummary is a value snapshot of a Latency distribution, in seconds
// of modeled time. It marshals cleanly (the scan server's /stats endpoint
// serves it as JSON).
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}
