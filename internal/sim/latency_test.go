package sim

import "testing"

func TestLatencyQuantiles(t *testing.T) {
	var l Latency
	for i := 100; i >= 1; i-- { // reverse insertion order must not matter
		l.Observe(float64(i))
	}
	if l.Count() != 100 {
		t.Fatalf("count %d, want 100", l.Count())
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := l.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g (nearest rank)", c.q, got, c.want)
		}
	}
	s := l.Summary()
	if s.Count != 100 || s.Mean != 50.5 || s.P50 != 50 || s.P99 != 99 || s.Max != 100 {
		t.Errorf("summary %+v", s)
	}
}

func TestLatencyEmptyAndMerge(t *testing.T) {
	var l Latency
	if s := l.Summary(); s != (LatencySummary{}) {
		t.Errorf("empty summary %+v, want zero", s)
	}
	if got := l.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %g, want 0", got)
	}

	var a, b Latency
	a.Observe(1)
	a.Observe(3)
	b.Observe(2)
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 3 || a.Quantile(0.5) != 2 {
		t.Errorf("merged count %d median %g, want 3 and 2", a.Count(), a.Quantile(0.5))
	}
}
