package sim

// CostModel prices TaskStats counters into simulated seconds. All rates are
// in bytes/second of decoded (output-side) data unless noted. The "boxed"
// rates model Java-style deserialization with per-value object creation and
// are calibrated against the paper's Figure 8 (e.g. Java map deserialization
// drops below SATA disk bandwidth once 60% of the record is map-typed).
// The "view" rates model C++-style direct buffer access.
type CostModel struct {
	Cluster ClusterConfig

	// Boxed (Java-analogue) deserialization rates.
	RawRate    float64 // byte arrays, no per-element decode
	IntRate    float64 // boxed integers/longs
	DoubleRate float64 // boxed doubles
	StringRate float64 // string object creation
	MapRate    float64 // maps / arrays / nested records (object churn)
	TextRate   float64 // delimited-text parsing (strconv, splitting)
	SkipRate   float64 // per-record skipping without materialization

	// View (C++-analogue) rates, used by Figure 8's comparison arm.
	ViewRawRate    float64
	ViewIntRate    float64
	ViewDoubleRate float64
	ViewMapRate    float64

	// Decompression rates (output bytes/second).
	ZlibDecompRate float64
	LzoDecompRate  float64
	DictDecompRate float64
	// Compression rates (input bytes/second), used on load paths.
	ZlibCompRate float64
	LzoCompRate  float64
	DictCompRate float64

	// VecRate is bytes/second for decoding encoded primitives into typed
	// column vectors (vectorized execution): flat array writes, no boxing.
	VecRate float64
	// VecValueCost is seconds per vector entry appended (residual per-value
	// loop overhead of vectorized decode — branchy varint stepping, offset
	// bookkeeping — an order of magnitude below ValueCost's object churn).
	VecValueCost float64
	// VecBatchCost is seconds of fixed overhead per vector batch built
	// (selection-bitmap allocation, batch setup, goroutine handoff).
	VecBatchCost float64

	// AggRowCost is seconds per row folded into aggregate state (counter
	// bumps and min/max compares over already-decoded storage — on the
	// order of the vectorized per-value loop, far below record churn).
	AggRowCost float64
	// AggGroupCost is seconds per record group an aggregation answered from
	// zone statistics alone (a handful of arithmetic ops over stats already
	// resident for pruning).
	AggGroupCost float64
	// DictIdCompareCost is seconds per dictionary-id comparison (an integer
	// compare in a tight loop, replacing a string materialize-and-compare).
	DictIdCompareCost float64

	// RecordCost is seconds per record object materialized.
	RecordCost float64
	// ValueCost is seconds per field value materialized into an object.
	ValueCost float64
	// EmitCost is seconds per map-output key/value pair emitted.
	EmitCost float64
	// SortRate is bytes/second for the map-output sort/spill/merge path.
	SortRate float64
}

// DefaultModel returns the calibrated cost model for the given cluster.
//
// Calibration sources:
//   - Figure 8: Java ints ~250 MB/s, doubles ~350 MB/s, maps ~45 MB/s (the
//     f=60% crossover with SATA bandwidth), raw byte-array movement
//     ~1 GB/s; C++ counterparts near memory bandwidth except std::map.
//   - Section 6.2: TXT is ~3x slower than SEQ on a CPU-bound scan, fixing
//     the text-parse rate near 20 MB/s.
//   - Era-typical codec throughputs: ZLIB inflate ~90 MB/s, LZO decompress
//     ~350 MB/s, dictionary decode ~1.2 GB/s; deflate ~30 MB/s,
//     LZO compress ~150 MB/s.
func DefaultModel() CostModel {
	return DefaultModelFor(DefaultCluster())
}

// DefaultModelFor returns the calibrated cost model with an explicit
// cluster configuration.
func DefaultModelFor(c ClusterConfig) CostModel {
	return CostModel{
		Cluster: c,

		RawRate:    1000 * MB,
		IntRate:    250 * MB,
		DoubleRate: 350 * MB,
		StringRate: 150 * MB,
		MapRate:    45 * MB,
		TextRate:   20 * MB,
		SkipRate:   2000 * MB,

		ViewRawRate:    2000 * MB,
		ViewIntRate:    1700 * MB,
		ViewDoubleRate: 1800 * MB,
		ViewMapRate:    300 * MB,

		ZlibDecompRate: 90 * MB,
		LzoDecompRate:  350 * MB,
		DictDecompRate: 1200 * MB,
		ZlibCompRate:   30 * MB,
		LzoCompRate:    150 * MB,
		DictCompRate:   400 * MB,

		VecRate:      1200 * MB,
		VecValueCost: 0.001e-6,
		VecBatchCost: 2e-6,

		AggRowCost:        0.0012e-6,
		AggGroupCost:      0.2e-6,
		DictIdCompareCost: 0.0008e-6,

		RecordCost: 0.05e-6,
		ValueCost:  0.01e-6,
		EmitCost:   0.5e-6,
		SortRate:   100 * MB,
	}
}

// CPUSeconds prices the decode/parse/decompress work of a task using the
// boxed (Java-analogue) rates.
func (m CostModel) CPUSeconds(c CPUStats) float64 {
	s := float64(c.RawBytes)/m.RawRate +
		float64(c.IntBytes)/m.IntRate +
		float64(c.DoubleBytes)/m.DoubleRate +
		float64(c.StringBytes)/m.StringRate +
		float64(c.MapBytes)/m.MapRate +
		float64(c.TextBytes)/m.TextRate +
		float64(c.SkippedBytes)/m.SkipRate +
		float64(c.ZlibBytes)/m.ZlibDecompRate +
		float64(c.LzoBytes)/m.LzoDecompRate +
		float64(c.DictBytes)/m.DictDecompRate +
		float64(c.ZlibCompBytes)/m.ZlibCompRate +
		float64(c.LzoCompBytes)/m.LzoCompRate +
		float64(c.DictCompBytes)/m.DictCompRate +
		float64(c.RecordsMaterialized)*m.RecordCost +
		float64(c.ValuesMaterialized)*m.ValueCost +
		float64(c.VecBytes)/m.VecRate +
		float64(c.VecValues)*m.VecValueCost
	return s
}

// VecSeconds prices the vectorized-execution bookkeeping of a task: fixed
// batch-setup overhead per vector batch. The decode work itself is priced in
// CPUSeconds through VecBytes/VecValues.
func (m CostModel) VecSeconds(t TaskStats) float64 {
	return float64(t.VecBatches) * m.VecBatchCost
}

// AggSeconds prices aggregation-pushdown work: the per-row fold loop, the
// zone-stats group shortcut, and dictionary-id comparisons. All three
// replace strictly more expensive counters (record materialization, value
// decode, string compares), which is where the pushdown's modeled win
// comes from.
func (m CostModel) AggSeconds(t TaskStats) float64 {
	return float64(t.RowsAggregated)*m.AggRowCost +
		float64(t.AggGroupsShortcut)*m.AggGroupCost +
		float64(t.DictIdCompares)*m.DictIdCompareCost
}

// ViewCPUSeconds prices decode work using the view (C++-analogue) rates.
// Only the four Figure 8 counters differ; codec and record costs are reused.
func (m CostModel) ViewCPUSeconds(c CPUStats) float64 {
	boxed := m
	boxed.RawRate = m.ViewRawRate
	boxed.IntRate = m.ViewIntRate
	boxed.DoubleRate = m.ViewDoubleRate
	boxed.MapRate = m.ViewMapRate
	boxed.StringRate = m.ViewRawRate
	boxed.RecordCost = 0
	boxed.ValueCost = 0
	return boxed.CPUSeconds(c)
}

// IOSeconds prices a task's disk and network traffic given the disk and
// network bandwidth available to it in bytes/second. Remote bytes are
// charged against both the network and a disk: the serving datanode still
// reads them from its own spindles, so a non-local read consumes strictly
// more cluster resources than a local one — the effect Section 6.4's
// co-location experiment measures.
func (m CostModel) IOSeconds(io IOStats, diskBW, netBW float64) float64 {
	return float64(io.LocalBytes)/diskBW +
		float64(io.RemoteBytes)/netBW +
		float64(io.RemoteBytes)/diskBW +
		float64(io.Seeks)*m.Cluster.SeekTime +
		float64(io.InterleavedBytes)/float64(ReadaheadBytes)*m.Cluster.SeekTime
}

// ReadaheadBytes is the modeled per-stream readahead window: a multi-stream
// scan pays one disk seek per window per stream as the arm rotates among
// column files. CIF readers use the same value as their refill chunk so the
// interleave charge is consistent with real refill behaviour.
const ReadaheadBytes = 1 << 20

// SelectiveReadaheadBytes is the refill chunk CIF readers shrink to when a
// selection predicate is attached. Selective scans jump with skip lists
// instead of streaming, so a full readahead window mostly prefetches bytes
// the jump then discards; a smaller chunk lets jumps past it eliminate the
// I/O. The interleave charge normalizes per ReadaheadBytes window, so the
// extra arm movements of the finer refills are priced consistently.
const SelectiveReadaheadBytes = 32 << 10

// MapTaskSeconds prices one map task: per-slot disk/network share, I/O not
// overlapped with CPU (matching Hadoop 0.21's record-at-a-time readers),
// plus emit cost for map output.
func (m CostModel) MapTaskSeconds(t TaskStats) float64 {
	io := m.IOSeconds(t.IO, m.Cluster.PerSlotDiskBandwidth(), m.Cluster.PerSlotNetBandwidth())
	cpu := m.CPUSeconds(t.CPU)
	emit := float64(t.OutputRecords) * m.EmitCost
	return io + cpu + emit + m.VecSeconds(t) + m.AggSeconds(t)
}

// ScanSeconds prices a single-threaded scan on an otherwise idle node
// (the paper's Section 6.2 microbenchmark setting): the stream gets a full
// disk's bandwidth and the full network interface.
func (m CostModel) ScanSeconds(t TaskStats) float64 {
	io := m.IOSeconds(t.IO, m.Cluster.DiskBandwidth, m.Cluster.NetBandwidth)
	cpu := m.CPUSeconds(t.CPU)
	return io + cpu + m.VecSeconds(t) + m.AggSeconds(t)
}

// MapTime prices the paper's "map time" metric: the total time consumed by
// all map tasks divided by the number of map slots in the cluster
// (Section 6.3). Because every pricing term is linear in the counters, the
// sum over per-task times equals the time of the aggregated counters.
func (m CostModel) MapTime(total TaskStats) float64 {
	return m.MapTaskSeconds(total) / float64(m.Cluster.MapSlots())
}

// ShuffleReduceSeconds models the format-independent tail of a MapReduce
// job: shuffling map output across the network, merge-sorting it, and
// running the reduce function.
func (m CostModel) ShuffleReduceSeconds(total TaskStats) float64 {
	if total.OutputBytes == 0 {
		return 0
	}
	clusterNet := m.Cluster.NetBandwidth * float64(m.Cluster.Nodes)
	shuffle := float64(total.OutputBytes) / clusterNet
	reducers := m.Cluster.Nodes * m.Cluster.ReducersPerNode
	if reducers < 1 {
		reducers = 1
	}
	sort := float64(total.OutputBytes) / m.SortRate / float64(reducers)
	return shuffle + sort
}

// TotalTime prices the paper's "total time" metric: map phase plus the
// shuffle/sort/reduce tail plus fixed job overhead.
func (m CostModel) TotalTime(total TaskStats) float64 {
	return m.MapTime(total) + m.ShuffleReduceSeconds(total) + m.Cluster.JobOverhead
}

// PlannedScanSeconds prices a scan before it runs, from the planner's
// estimates alone: the bytes the chosen plan expects to charge stream at
// one disk's bandwidth and decode at the raw rate, and each estimated
// match materializes a record. It is the EXPLAIN-side counterpart of
// ScanSeconds — deliberately coarse (no per-type rates, no seek model),
// because its inputs are estimates; comparing it with the post-run
// ScanSeconds is how explain output shows estimation quality in time
// units.
func (m CostModel) PlannedScanSeconds(estBytes, estMatches int64) float64 {
	return float64(estBytes)/m.Cluster.DiskBandwidth +
		float64(estBytes)/m.RawRate +
		float64(estMatches)*m.RecordCost
}

// LoadSeconds prices a data-loading (format conversion) run by a
// single-threaded loader process, the setting of the paper's Table 2: the
// source is read at one disk's bandwidth, all decode/encode/compress work
// runs on one core, and each written byte costs disk on every replica of
// the pipelined HDFS write, served by the loader node's spindles.
func (m CostModel) LoadSeconds(t TaskStats) float64 {
	read := m.IOSeconds(t.IO, m.Cluster.DiskBandwidth, m.Cluster.NetBandwidth)
	cpu := m.CPUSeconds(t.CPU)
	replicated := float64(t.IO.BytesWritten) * float64(m.Cluster.Replication)
	nodeDisk := m.Cluster.DiskBandwidth * float64(m.Cluster.DisksPerNode)
	write := replicated / nodeDisk
	return read + cpu + write + m.Cluster.JobOverhead
}
