package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultClusterMatchesPaper(t *testing.T) {
	c := DefaultCluster()
	if c.Nodes != 40 {
		t.Errorf("Nodes = %d, want 40", c.Nodes)
	}
	if c.SlotsPerNode != 6 {
		t.Errorf("SlotsPerNode = %d, want 6", c.SlotsPerNode)
	}
	if c.MapSlots() != 240 {
		t.Errorf("MapSlots = %d, want 240", c.MapSlots())
	}
	if c.Replication != 3 {
		t.Errorf("Replication = %d, want 3", c.Replication)
	}
	if c.TransferUnit != 128*KB {
		t.Errorf("TransferUnit = %d, want 128KB", c.TransferUnit)
	}
	if c.BlockSize != 64*MB {
		t.Errorf("BlockSize = %d, want 64MB", c.BlockSize)
	}
}

func TestPerSlotDiskBandwidth(t *testing.T) {
	c := DefaultCluster()
	got := c.PerSlotDiskBandwidth()
	want := c.DiskBandwidth * 4 / 6
	if math.Abs(got-want) > 1 {
		t.Errorf("PerSlotDiskBandwidth = %v, want %v", got, want)
	}

	// A single slot cannot exceed one disk's bandwidth.
	c.SlotsPerNode = 1
	if got := c.PerSlotDiskBandwidth(); got != c.DiskBandwidth {
		t.Errorf("single-slot bandwidth = %v, want %v", got, c.DiskBandwidth)
	}

	// Zero slots must not divide by zero.
	c.SlotsPerNode = 0
	if got := c.PerSlotDiskBandwidth(); got <= 0 {
		t.Errorf("zero-slot bandwidth = %v, want > 0", got)
	}
}

func TestSingleNode(t *testing.T) {
	c := SingleNode()
	if c.Nodes != 1 || c.SlotsPerNode != 1 {
		t.Errorf("SingleNode = %+v, want 1 node / 1 slot", c)
	}
}

func TestIOStatsAddAndScale(t *testing.T) {
	a := IOStats{LocalBytes: 100, RemoteBytes: 10, LogicalBytes: 90, Seeks: 3, BytesWritten: 7}
	b := IOStats{LocalBytes: 1, RemoteBytes: 2, LogicalBytes: 3, Seeks: 4, BytesWritten: 5}
	a.Add(b)
	want := IOStats{LocalBytes: 101, RemoteBytes: 12, LogicalBytes: 93, Seeks: 7, BytesWritten: 12}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	a.Scale(2)
	want = IOStats{LocalBytes: 202, RemoteBytes: 24, LogicalBytes: 186, Seeks: 14, BytesWritten: 24}
	if a != want {
		t.Errorf("Scale = %+v, want %+v", a, want)
	}
	if a.TotalChargedBytes() != 226 {
		t.Errorf("TotalChargedBytes = %d, want 226", a.TotalChargedBytes())
	}
}

func TestCPUStatsAddScaleRoundTrip(t *testing.T) {
	s := CPUStats{RawBytes: 10, IntBytes: 20, MapBytes: 30, RecordsMaterialized: 5}
	s.Add(CPUStats{RawBytes: 1, StringBytes: 2, ValuesMaterialized: 9})
	if s.RawBytes != 11 || s.StringBytes != 2 || s.ValuesMaterialized != 9 {
		t.Errorf("Add produced %+v", s)
	}
	s.Scale(3)
	if s.RawBytes != 33 || s.IntBytes != 60 || s.MapBytes != 90 || s.RecordsMaterialized != 15 {
		t.Errorf("Scale produced %+v", s)
	}
}

// CPUSeconds must be linear: pricing a sum of stats equals the sum of
// prices. The MapTime definition depends on this.
func TestCPUSecondsLinearity(t *testing.T) {
	m := DefaultModel()
	f := func(a, b CPUStats) bool {
		abs := func(s *CPUStats) {
			// Keep counters non-negative and modest so float error stays tiny.
			clamp := func(v *int64) {
				if *v < 0 {
					*v = -*v
				}
				*v %= 1 << 30
			}
			clamp(&s.RawBytes)
			clamp(&s.IntBytes)
			clamp(&s.DoubleBytes)
			clamp(&s.StringBytes)
			clamp(&s.MapBytes)
			clamp(&s.TextBytes)
			clamp(&s.SkippedBytes)
			clamp(&s.ZlibBytes)
			clamp(&s.LzoBytes)
			clamp(&s.DictBytes)
			clamp(&s.ZlibCompBytes)
			clamp(&s.LzoCompBytes)
			clamp(&s.DictCompBytes)
			clamp(&s.RecordsMaterialized)
			clamp(&s.ValuesMaterialized)
			clamp(&s.VecBytes)
			clamp(&s.VecValues)
		}
		abs(&a)
		abs(&b)
		sum := a
		sum.Add(b)
		lhs := m.CPUSeconds(sum)
		rhs := m.CPUSeconds(a) + m.CPUSeconds(b)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIOSecondsComponents(t *testing.T) {
	m := DefaultModel()
	io := IOStats{LocalBytes: 100 * MB, RemoteBytes: 80 * MB, Seeks: 10}
	got := m.IOSeconds(io, 100*MB, 80*MB)
	// Remote bytes cost network AND the serving node's disk.
	want := 1.0 + 1.0 + 0.8 + 10*m.Cluster.SeekTime
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("IOSeconds = %v, want %v", got, want)
	}
	if m.IOSeconds(IOStats{RemoteBytes: MB}, 100*MB, 80*MB) <= m.IOSeconds(IOStats{LocalBytes: MB}, 100*MB, 80*MB) {
		t.Error("remote bytes should cost strictly more than local bytes")
	}
}

func TestViewFasterThanBoxed(t *testing.T) {
	m := DefaultModel()
	c := CPUStats{IntBytes: GB, MapBytes: GB, DoubleBytes: GB, RecordsMaterialized: 1e6}
	if b, v := m.CPUSeconds(c), m.ViewCPUSeconds(c); v >= b {
		t.Errorf("view CPU %v not faster than boxed %v", v, b)
	}
}

func TestMapTimeIsPerSlotAverage(t *testing.T) {
	m := DefaultModel()
	total := TaskStats{IO: IOStats{LocalBytes: GB}}
	per := m.MapTaskSeconds(total)
	if got := m.MapTime(total); math.Abs(got-per/240) > 1e-12 {
		t.Errorf("MapTime = %v, want %v", got, per/240)
	}
}

func TestTotalTimeIncludesOverheadAndShuffle(t *testing.T) {
	m := DefaultModel()
	noOutput := TaskStats{IO: IOStats{LocalBytes: GB}}
	if got := m.TotalTime(noOutput); got < m.Cluster.JobOverhead {
		t.Errorf("TotalTime = %v, want >= JobOverhead %v", got, m.Cluster.JobOverhead)
	}
	withOutput := noOutput
	withOutput.OutputBytes = 10 * GB
	if m.TotalTime(withOutput) <= m.TotalTime(noOutput) {
		t.Error("shuffle bytes did not increase total time")
	}
}

func TestLoadSecondsChargesReplication(t *testing.T) {
	m := DefaultModel()
	small := TaskStats{IO: IOStats{BytesWritten: GB}}
	big := TaskStats{IO: IOStats{BytesWritten: 10 * GB}}
	if m.LoadSeconds(big) <= m.LoadSeconds(small) {
		t.Error("writing more bytes should take longer")
	}
}

// Figure 8 anchor: with the calibrated boxed map rate, a record that is 60%
// map-typed and 40% raw bytes deserializes below SATA disk bandwidth
// (~75 MB/s), as the paper observes.
func TestBoxedMapCrossoverBelowDiskBandwidth(t *testing.T) {
	m := DefaultModel()
	const total = 1000 * MB
	c := CPUStats{MapBytes: 600 * MB, RawBytes: 400 * MB}
	bw := float64(total) / m.CPUSeconds(c)
	if bw >= 80*MB {
		t.Errorf("boxed 60%%-map bandwidth = %.1f MB/s, want < 80 MB/s", bw/MB)
	}
	// And the C++-analogue view path stays well above it.
	if vbw := float64(total) / m.ViewCPUSeconds(c); vbw <= 150*MB {
		t.Errorf("view 60%%-map bandwidth = %.1f MB/s, want > 150 MB/s", vbw/MB)
	}
}

func TestScaleIntRounds(t *testing.T) {
	if got := scaleInt(3, 0.5); got != 2 {
		t.Errorf("scaleInt(3, 0.5) = %d, want 2 (round half up)", got)
	}
	if got := scaleInt(0, 123); got != 0 {
		t.Errorf("scaleInt(0, 123) = %d, want 0", got)
	}
}
