package sim

// IOStats accumulates disk and network traffic observed by one or more HDFS
// streams. Bytes are charged at transfer-unit granularity by the filesystem
// layer, so ChargedBytes >= LogicalBytes whenever reads are short or
// scattered; the gap is exactly the prefetch waste the paper attributes to
// RCFile (Section 4.1).
type IOStats struct {
	// LocalBytes is bytes served from a replica on the reading node,
	// charged at transfer-unit granularity.
	LocalBytes int64
	// RemoteBytes is bytes served over the network from another node,
	// charged at transfer-unit granularity.
	RemoteBytes int64
	// LogicalBytes is the bytes actually delivered to the caller.
	LogicalBytes int64
	// Seeks is the number of disk seeks (intra-stream jumps and
	// multi-stream interleave switches). Seeks grow linearly with data
	// volume for a fixed layout, so they extrapolate cleanly.
	Seeks int64
	// InterleavedBytes counts bytes fetched while other column streams of
	// the same scan were active on the same disks. They are priced as
	// fractional seek time per readahead window (one arm movement per
	// refill), a formulation that is exactly linear in data volume and so
	// survives scale extrapolation without rounding artifacts.
	InterleavedBytes int64
	// Opens counts first reads of a stream. They are tracked separately
	// from Seeks because they are a per-file constant: extrapolating them
	// linearly from a laptop-scale sample (whose files are much smaller
	// than production blocks) would fabricate seek time. The cost model
	// leaves them unpriced; at production geometry they are bounded by
	// files-per-dataset x seek time, which is negligible next to refill
	// seeks.
	Opens int64
	// BytesWritten is bytes written through the filesystem (load paths).
	BytesWritten int64
}

// Add accumulates o into s.
func (s *IOStats) Add(o IOStats) {
	s.LocalBytes += o.LocalBytes
	s.RemoteBytes += o.RemoteBytes
	s.LogicalBytes += o.LogicalBytes
	s.Seeks += o.Seeks
	s.InterleavedBytes += o.InterleavedBytes
	s.Opens += o.Opens
	s.BytesWritten += o.BytesWritten
}

// Scale multiplies every counter by k. Used to extrapolate a laptop-scale
// measurement to the paper's dataset size; all counters are linear in
// dataset size for a fixed layout geometry.
func (s *IOStats) Scale(k float64) {
	s.LocalBytes = scaleInt(s.LocalBytes, k)
	s.RemoteBytes = scaleInt(s.RemoteBytes, k)
	s.LogicalBytes = scaleInt(s.LogicalBytes, k)
	s.Seeks = scaleInt(s.Seeks, k)
	s.InterleavedBytes = scaleInt(s.InterleavedBytes, k)
	s.Opens = scaleInt(s.Opens, k)
	s.BytesWritten = scaleInt(s.BytesWritten, k)
}

// TotalChargedBytes is the total traffic charged to disks and network.
func (s IOStats) TotalChargedBytes() int64 { return s.LocalBytes + s.RemoteBytes }

// CPUStats accumulates deserialization, parsing, and decompression work
// performed by decoders. Each counter is in bytes of *output* (decoded or
// decompressed) data, except the record/value counters.
type CPUStats struct {
	// RawBytes is bytes moved without element-wise decoding (byte-array
	// columns, block copies).
	RawBytes int64
	// IntBytes is bytes decoded as boxed integers/longs.
	IntBytes int64
	// DoubleBytes is bytes decoded as boxed doubles.
	DoubleBytes int64
	// StringBytes is bytes decoded into string objects.
	StringBytes int64
	// MapBytes is bytes decoded into map/array/nested-record structures
	// (object-churn-heavy complex types).
	MapBytes int64
	// TextBytes is bytes parsed from delimited text (TXT format).
	TextBytes int64
	// SkippedBytes is bytes skipped via skip lists without deserialization.
	SkippedBytes int64
	// ZlibBytes / LzoBytes / DictBytes are bytes of decompressed output
	// produced by each codec.
	ZlibBytes int64
	LzoBytes  int64
	DictBytes int64
	// ZlibCompBytes / LzoCompBytes / DictCompBytes are bytes of input
	// consumed by each compressor (load paths).
	ZlibCompBytes int64
	LzoCompBytes  int64
	DictCompBytes int64
	// RecordsMaterialized is the number of record objects constructed.
	RecordsMaterialized int64
	// ValuesMaterialized is the number of field values deserialized into
	// objects.
	ValuesMaterialized int64
	// VecBytes is bytes of encoded primitive data decoded into typed column
	// vectors (vectorized execution). Vector decode writes into flat typed
	// arrays — no per-value object — so it is priced near memory bandwidth
	// rather than at the boxed rates.
	VecBytes int64
	// VecValues is the number of vector entries appended by vectorized
	// decode (the per-value loop overhead that remains after boxing is
	// eliminated).
	VecValues int64
}

// Add accumulates o into s.
func (s *CPUStats) Add(o CPUStats) {
	s.RawBytes += o.RawBytes
	s.IntBytes += o.IntBytes
	s.DoubleBytes += o.DoubleBytes
	s.StringBytes += o.StringBytes
	s.MapBytes += o.MapBytes
	s.TextBytes += o.TextBytes
	s.SkippedBytes += o.SkippedBytes
	s.ZlibBytes += o.ZlibBytes
	s.LzoBytes += o.LzoBytes
	s.DictBytes += o.DictBytes
	s.ZlibCompBytes += o.ZlibCompBytes
	s.LzoCompBytes += o.LzoCompBytes
	s.DictCompBytes += o.DictCompBytes
	s.RecordsMaterialized += o.RecordsMaterialized
	s.ValuesMaterialized += o.ValuesMaterialized
	s.VecBytes += o.VecBytes
	s.VecValues += o.VecValues
}

// Scale multiplies every counter by k.
func (s *CPUStats) Scale(k float64) {
	s.RawBytes = scaleInt(s.RawBytes, k)
	s.IntBytes = scaleInt(s.IntBytes, k)
	s.DoubleBytes = scaleInt(s.DoubleBytes, k)
	s.StringBytes = scaleInt(s.StringBytes, k)
	s.MapBytes = scaleInt(s.MapBytes, k)
	s.TextBytes = scaleInt(s.TextBytes, k)
	s.SkippedBytes = scaleInt(s.SkippedBytes, k)
	s.ZlibBytes = scaleInt(s.ZlibBytes, k)
	s.LzoBytes = scaleInt(s.LzoBytes, k)
	s.DictBytes = scaleInt(s.DictBytes, k)
	s.ZlibCompBytes = scaleInt(s.ZlibCompBytes, k)
	s.LzoCompBytes = scaleInt(s.LzoCompBytes, k)
	s.DictCompBytes = scaleInt(s.DictCompBytes, k)
	s.RecordsMaterialized = scaleInt(s.RecordsMaterialized, k)
	s.ValuesMaterialized = scaleInt(s.ValuesMaterialized, k)
	s.VecBytes = scaleInt(s.VecBytes, k)
	s.VecValues = scaleInt(s.VecValues, k)
}

// TaskStats is the complete work profile of one task (or one scan).
type TaskStats struct {
	IO  IOStats
	CPU CPUStats
	// RecordsProcessed is the number of records delivered to the map
	// function (curPos advances, whether or not fields were deserialized).
	RecordsProcessed int64
	// OutputBytes is the bytes of map output emitted (drives shuffle cost).
	OutputBytes int64
	// OutputRecords is the number of key/value pairs emitted.
	OutputRecords int64
	// GroupsPruned is the number of record groups a pushdown predicate
	// proved irrelevant from per-group statistics alone; RecordsPruned is
	// the records those groups held. Pruned records are charged skips,
	// not reads: no filter-column value is deserialized for them.
	GroupsPruned  int64
	RecordsPruned int64
	// BloomPruned is the subset of GroupsPruned whose proof needed a Bloom
	// filter: the same statistics with filters stripped could not prune
	// the group. It splits bloom wins out of the zone maps' so the bloom
	// sweep can attribute its savings; it is zero when scan.Spec.NoBloom
	// disables consultation.
	BloomPruned int64
	// RecordsFiltered is the number of records a pushdown predicate
	// rejected after evaluating filter-column values (the zone maps could
	// not rule their group out).
	RecordsFiltered int64
	// SplitsPruned is the number of split-directories the scheduler tier
	// dropped from whole-file footer statistics before any map task was
	// created (recorded in the job's aggregate stats; elided splits have
	// no task of their own).
	SplitsPruned int64
	// FilesPruned is the number of column files an opened reader skipped
	// wholesale at the file tier: its whole-file aggregate proved the
	// split-directory irrelevant, so no group index was built and no data
	// byte was read.
	FilesPruned int64
	// SharedReads is the number of member-job column cursors a shared scan
	// served from an already-open cursor instead of a fresh one: a column
	// stream read for k co-scheduled jobs counts k-1. Attributed once, on
	// the shared cursor set's stats — never on the member jobs'.
	SharedReads int64
	// BytesSaved is the charged bytes co-scheduling avoided: each shared
	// column stream's charged bytes times the additional member jobs it
	// served. Like SharedReads it is attributed once, on the shared stats.
	BytesSaved int64
	// CacheHits is the number of column-file regions (transfer units) a
	// session scan cache served instead of the disk subsystem; those
	// regions charge no local/remote bytes. BytesFromCache is the bytes
	// those regions held. Both are zero unless a mapred.Session with a
	// non-zero cache budget ran the task (hdfs.ScanCache).
	CacheHits      int64
	BytesFromCache int64
	// VecBatches is the number of column-vector batches the vectorized
	// execution path built and evaluated; RowsVectorized is the records
	// those batches covered (each record counted once, however many column
	// vectors were decoded for it). Both are zero on the scalar path.
	VecBatches     int64
	RowsVectorized int64
	// VecCacheHits is the number of per-column decoded vectors a session's
	// vector cache served instead of re-decoding; DecodeSavedValues is the
	// vector entries those hits held (decode work skipped entirely — the
	// bytes charge neither I/O nor decode CPU).
	VecCacheHits      int64
	DecodeSavedValues int64
	// AggBatches is the number of vector batches an aggregation pushdown
	// folded straight from selection bitmaps and column vectors;
	// RowsAggregated is the rows folded into aggregate state at any fold
	// site (batch, stats shortcut, or scalar) — none of them ever became a
	// record object.
	AggBatches     int64
	RowsAggregated int64
	// AggGroupsShortcut is the number of record groups an aggregation
	// answered from zone statistics alone: the zone map proved every row
	// matches and every function was stats-answerable, so the group
	// contributed to the aggregate with zero value bytes decoded.
	AggGroupsShortcut int64
	// DictIdCompares is the number of dictionary-id comparisons performed in
	// place of string equality on dictionary-encoded columns: the needle is
	// resolved to its window id once and rows compare as integers, never
	// materializing the strings.
	DictIdCompares int64
	// FlushedFiles is the number of files the streaming ingest path wrote
	// while flushing memtables into fresh time-partitioned split-directories
	// (schema, column, and delete files all count: each is a real create).
	FlushedFiles int64
	// CompactionBytes is the bytes of column data a compaction job wrote
	// while merging small fresh partitions into large statistics-rich ones.
	CompactionBytes int64
	// UpsertsResolved is the number of superseded record versions the ingest
	// path retired — a recrawl arrival shadowing an earlier version of the
	// same key, whether resolved in the memtable, against a flushed
	// partition, or at compaction time.
	UpsertsResolved int64
	// FreshPartitionsScanned is the number of not-yet-compacted ingest
	// partitions (seq-N split-directories) a scan read through the
	// merge-on-read path.
	FreshPartitionsScanned int64
}

// Add accumulates o into s.
func (s *TaskStats) Add(o TaskStats) {
	s.IO.Add(o.IO)
	s.CPU.Add(o.CPU)
	s.RecordsProcessed += o.RecordsProcessed
	s.OutputBytes += o.OutputBytes
	s.OutputRecords += o.OutputRecords
	s.GroupsPruned += o.GroupsPruned
	s.RecordsPruned += o.RecordsPruned
	s.BloomPruned += o.BloomPruned
	s.RecordsFiltered += o.RecordsFiltered
	s.SplitsPruned += o.SplitsPruned
	s.FilesPruned += o.FilesPruned
	s.SharedReads += o.SharedReads
	s.BytesSaved += o.BytesSaved
	s.CacheHits += o.CacheHits
	s.BytesFromCache += o.BytesFromCache
	s.VecBatches += o.VecBatches
	s.RowsVectorized += o.RowsVectorized
	s.VecCacheHits += o.VecCacheHits
	s.DecodeSavedValues += o.DecodeSavedValues
	s.AggBatches += o.AggBatches
	s.RowsAggregated += o.RowsAggregated
	s.AggGroupsShortcut += o.AggGroupsShortcut
	s.DictIdCompares += o.DictIdCompares
	s.FlushedFiles += o.FlushedFiles
	s.CompactionBytes += o.CompactionBytes
	s.UpsertsResolved += o.UpsertsResolved
	s.FreshPartitionsScanned += o.FreshPartitionsScanned
}

// Scale multiplies every counter by k.
func (s *TaskStats) Scale(k float64) {
	s.IO.Scale(k)
	s.CPU.Scale(k)
	s.RecordsProcessed = scaleInt(s.RecordsProcessed, k)
	s.OutputBytes = scaleInt(s.OutputBytes, k)
	s.OutputRecords = scaleInt(s.OutputRecords, k)
	s.GroupsPruned = scaleInt(s.GroupsPruned, k)
	s.RecordsPruned = scaleInt(s.RecordsPruned, k)
	s.BloomPruned = scaleInt(s.BloomPruned, k)
	s.RecordsFiltered = scaleInt(s.RecordsFiltered, k)
	s.SplitsPruned = scaleInt(s.SplitsPruned, k)
	s.FilesPruned = scaleInt(s.FilesPruned, k)
	s.SharedReads = scaleInt(s.SharedReads, k)
	s.BytesSaved = scaleInt(s.BytesSaved, k)
	s.CacheHits = scaleInt(s.CacheHits, k)
	s.BytesFromCache = scaleInt(s.BytesFromCache, k)
	s.VecBatches = scaleInt(s.VecBatches, k)
	s.RowsVectorized = scaleInt(s.RowsVectorized, k)
	s.VecCacheHits = scaleInt(s.VecCacheHits, k)
	s.DecodeSavedValues = scaleInt(s.DecodeSavedValues, k)
	s.AggBatches = scaleInt(s.AggBatches, k)
	s.RowsAggregated = scaleInt(s.RowsAggregated, k)
	s.AggGroupsShortcut = scaleInt(s.AggGroupsShortcut, k)
	s.DictIdCompares = scaleInt(s.DictIdCompares, k)
	s.FlushedFiles = scaleInt(s.FlushedFiles, k)
	s.CompactionBytes = scaleInt(s.CompactionBytes, k)
	s.UpsertsResolved = scaleInt(s.UpsertsResolved, k)
	s.FreshPartitionsScanned = scaleInt(s.FreshPartitionsScanned, k)
}

func scaleInt(v int64, k float64) int64 {
	return int64(float64(v)*k + 0.5)
}
