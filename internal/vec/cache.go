// Package vec provides the memory layer of vectorized execution: an LRU
// cache of decoded column vectors and a buffer pool for batch scratch
// vectors.
//
// The vector cache is the decode-side analogue of hdfs.ScanCache. The scan
// cache keeps charged byte regions resident so warm rounds skip the disk;
// the vector cache keeps *decoded* vectors resident so warm rounds skip the
// decode CPU too — the session serves the batch straight from memory,
// charging neither I/O nor decode work, and credits the skip to
// sim.TaskStats.VecCacheHits / DecodeSavedValues. Entries are keyed by
// (file path, file generation, batch start record): generations are
// assigned at file creation, so a dataset rebuilt under the same paths can
// never serve stale vectors (cf. hdfs.ScanCache's keying argument).
package vec

import (
	"container/list"
	"strings"
	"sync"

	"colmr/internal/scan"
)

// Key identifies one cached vector: one column file generation's records
// [Start, end) for the batch boundary recorded with the entry.
type Key struct {
	Path  string
	Gen   int64
	Start int64
	// ID distinguishes a column's dictionary-id vector from its value
	// vector over the same records — both may be resident at once, and a
	// scan asking for one must never be handed the other.
	ID bool
}

type entry struct {
	key  Key
	end  int64
	v    *scan.Vector
	iv   *scan.IDVector
	size int64
}

// Cache is an LRU-bounded vector cache, safe for concurrent use. Cached
// vectors are shared between scans and are strictly read-only; a vector
// admitted to the cache must never be mutated or pooled again. A nil
// *Cache is valid and disables caching everywhere it is consulted.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[Key]*list.Element
}

// New returns a cache bounded to budget bytes of vector storage
// (scan.Vector.MemBytes). A budget <= 0 returns nil: caching disabled.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[Key]*list.Element),
	}
}

// Get returns the cached vector for key covering records [key.Start, end),
// or nil. A resident entry with a different end is a miss: batch
// boundaries are part of the identity, so a query splitting groups
// differently never sees a short or long vector.
func (c *Cache) Get(key Key, end int64) *scan.Vector {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*entry)
	if e.end != end {
		return nil
	}
	c.ll.MoveToFront(el)
	return e.v
}

// Add admits a vector covering records [key.Start, end), evicting
// least-recently-used entries until the budget holds. The vector becomes
// shared and read-only. A vector larger than the whole budget is not
// admitted; the caller may keep using (and later reuse) it.
func (c *Cache) Add(key Key, end int64, v *scan.Vector) bool {
	if c == nil || v == nil {
		return false
	}
	return c.admit(&entry{key: key, end: end, v: v, size: v.MemBytes()})
}

// GetID returns the cached dictionary-id vector for key covering records
// [key.Start, end), or nil. Id vectors live under the same budget and LRU
// order as value vectors, keyed apart by Key.ID.
func (c *Cache) GetID(key Key, end int64) *scan.IDVector {
	if c == nil {
		return nil
	}
	key.ID = true
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*entry)
	if e.end != end {
		return nil
	}
	c.ll.MoveToFront(el)
	return e.iv
}

// AddID admits a dictionary-id vector covering records [key.Start, end)
// under the same budget and eviction policy as Add. The vector becomes
// shared and read-only.
func (c *Cache) AddID(key Key, end int64, iv *scan.IDVector) bool {
	if c == nil || iv == nil {
		return false
	}
	key.ID = true
	return c.admit(&entry{key: key, end: end, iv: iv, size: iv.MemBytes()})
}

// admit inserts an entry, evicting from the LRU tail until the budget
// holds. An entry larger than the whole budget is not admitted.
func (c *Cache) admit(e *entry) bool {
	if e.size <= 0 {
		e.size = 1
	}
	if e.size > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		// Replace: a different batch boundary over the same start wins.
		old := el.Value.(*entry)
		c.used -= old.size
		c.ll.Remove(el)
		delete(c.entries, e.key)
	}
	for c.used+e.size > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		old := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.entries, old.key)
		c.used -= old.size
	}
	c.entries[e.key] = c.ll.PushFront(e)
	c.used += e.size
	return true
}

// Invalidate drops every cached vector of the file or dataset at prefix.
// Generations already protect against stale reads; Invalidate releases the
// budget eagerly when a dataset is known dead (cf. hdfs.ScanCache).
func (c *Cache) Invalidate(prefix string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Path == prefix || strings.HasPrefix(e.key.Path, prefix+"/") {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.used -= e.size
		}
		el = next
	}
}

// Used returns the resident vector bytes.
func (c *Cache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Vectors returns the number of resident vectors.
func (c *Cache) Vectors() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Budget returns the configured bound in bytes.
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Pool recycles batch scratch vectors so steady-state scans stop
// allocating: a reader takes a vector per column per batch and returns it
// when the batch retires. Vectors admitted to a Cache must NOT be returned
// — they are shared and read-only from that point on.
type Pool struct {
	p sync.Pool
}

// Get returns a reset vector of the given representation.
func (p *Pool) Get(kind scan.VecKind, capacity int) *scan.Vector {
	if v, ok := p.p.Get().(*scan.Vector); ok && v != nil {
		v.Reset(kind, capacity)
		return v
	}
	return scan.NewVector(kind, capacity)
}

// Put returns a vector to the pool.
func (p *Pool) Put(v *scan.Vector) {
	if v != nil {
		p.p.Put(v)
	}
}
