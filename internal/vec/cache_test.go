package vec

import (
	"fmt"
	"testing"

	"colmr/internal/scan"
)

func intVector(n int) *scan.Vector {
	v := scan.NewVector(scan.VecInt64, n)
	for i := 0; i < n; i++ {
		v.AppendInt(int64(i))
	}
	return v
}

func TestVectorCacheLRU(t *testing.T) {
	// Each 64-row int64 vector is 512 bytes; budget holds two.
	c := New(1100)
	k := func(i int) Key { return Key{Path: fmt.Sprintf("/d/0000%d/col", i), Gen: 1, Start: 0} }
	for i := 0; i < 3; i++ {
		if !c.Add(k(i), 64, intVector(64)) {
			t.Fatalf("vector %d not admitted", i)
		}
	}
	if c.Vectors() != 2 {
		t.Fatalf("resident %d vectors, want 2 after eviction", c.Vectors())
	}
	if c.Get(k(0), 64) != nil {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if c.Get(k(2), 64) == nil || c.Get(k(1), 64) == nil {
		t.Fatal("recent entries evicted")
	}
	// Touching k(1) makes k(2) the eviction victim for the next admit.
	c.Get(k(1), 64)
	c.Add(k(3), 64, intVector(64))
	if c.Get(k(2), 64) != nil {
		t.Fatal("recently-touched entry evicted instead of LRU")
	}
	if c.Get(k(1), 64) == nil {
		t.Fatal("touched entry evicted")
	}
}

func TestVectorCacheIdentity(t *testing.T) {
	c := New(1 << 20)
	key := Key{Path: "/d/00000/col", Gen: 7, Start: 128}
	c.Add(key, 192, intVector(64))

	if c.Get(key, 192) == nil {
		t.Fatal("exact key missed")
	}
	// A different batch end over the same start is a miss, not a short read.
	if c.Get(key, 160) != nil {
		t.Fatal("entry served for a different batch boundary")
	}
	// A different generation (dataset rebuilt under the same path) is a miss.
	if c.Get(Key{Path: key.Path, Gen: 8, Start: 128}, 192) != nil {
		t.Fatal("entry served across generations")
	}
	// Replacing the boundary replaces the entry.
	c.Add(key, 160, intVector(32))
	if c.Get(key, 192) != nil {
		t.Fatal("stale boundary survived replacement")
	}
	if c.Get(key, 160) == nil {
		t.Fatal("replacement entry missing")
	}
}

func TestVectorCacheInvalidate(t *testing.T) {
	c := New(1 << 20)
	c.Add(Key{Path: "/d/00000/col", Gen: 1}, 64, intVector(64))
	c.Add(Key{Path: "/d/00001/col", Gen: 1}, 64, intVector(64))
	c.Add(Key{Path: "/da/00000/col", Gen: 1}, 64, intVector(64))
	c.Invalidate("/d")
	if c.Vectors() != 1 {
		t.Fatalf("resident %d vectors after invalidate, want 1", c.Vectors())
	}
	// Prefix matching is path-component-wise: /da must survive.
	if c.Get(Key{Path: "/da/00000/col", Gen: 1}, 64) == nil {
		t.Fatal("sibling dataset invalidated")
	}
}

func TestVectorCacheBounds(t *testing.T) {
	if New(0) != nil {
		t.Fatal("zero budget should disable the cache")
	}
	var c *Cache
	if c.Get(Key{}, 0) != nil || c.Add(Key{}, 0, intVector(1)) || c.Used() != 0 || c.Vectors() != 0 {
		t.Fatal("nil cache is not inert")
	}
	c.Invalidate("/") // must not panic

	small := New(100)
	if small.Add(Key{Path: "p"}, 64, intVector(64)) {
		t.Fatal("vector larger than the whole budget admitted")
	}
}

func TestVectorPoolReuse(t *testing.T) {
	var p Pool
	v := p.Get(scan.VecInt64, 8)
	v.AppendInt(1)
	p.Put(v)
	w := p.Get(scan.VecString, 8)
	if w.Len() != 0 || w.Kind != scan.VecString {
		t.Fatal("pooled vector not reset")
	}
	w.AppendBytes([]byte("x"))
	if w.Value(0) != "x" {
		t.Fatal("pooled vector arena broken")
	}
}
