package workload

import (
	"math"
	"math/rand"

	"colmr/internal/serde"
)

// ArrivalOptions configures a simulated crawl-frontier arrival stream.
type ArrivalOptions struct {
	// Crawl configures the underlying URL universe and record shapes.
	Crawl CrawlOptions
	// Seed drives arrival timing and recrawl choice (independent of
	// Crawl.Seed, which fixes page identities).
	Seed int64
	// RatePerSec is the mean arrival rate (exponential inter-arrivals;
	// default 100/s).
	RatePerSec float64
	// RecrawlFraction is the probability an arrival revisits an
	// already-seen URL instead of discovering a new one (default 0).
	RecrawlFraction float64
	// ContentSkew heavy-tails the content column: each page's body size is
	// multiplied by a log-exponential (Pareto-tailed) factor of this shape
	// (0 disables). Real crawls are dominated by a minority of huge pages;
	// the skew is what makes within-file readahead policy interesting on
	// the content column.
	ContentSkew float64
	// StartMillis is the stream's epoch (default: the crawl dataset's
	// first fetchTime).
	StartMillis int64
}

// Arrival is one crawl result leaving the fetcher.
type Arrival struct {
	// Index identifies the URL (the crawl generator's record index).
	Index int64
	// Version counts crawls of this URL so far (0 = first crawl).
	Version int
	// Millis is the arrival (fetch) time.
	Millis int64
	// Rec is the URLInfo record.
	Rec *serde.GenericRecord
}

// ArrivalStream generates a deterministic, time-ordered stream of crawl
// arrivals: new pages mixed with recrawls of already-seen URLs, at an
// exponential arrival rate. Two streams with equal options produce
// identical sequences, which is what the ingest equivalence tests replay.
type ArrivalStream struct {
	crawl   *Crawl
	opts    ArrivalOptions
	rng     *rand.Rand
	clock   float64 // millis
	nextIdx int64
	vers    map[int64]int
}

// NewArrivalStream returns a stream over the options' URL universe.
func NewArrivalStream(opts ArrivalOptions) *ArrivalStream {
	if opts.RatePerSec <= 0 {
		opts.RatePerSec = 100
	}
	if opts.StartMillis == 0 {
		opts.StartMillis = 1293840000000
	}
	return &ArrivalStream{
		crawl: NewCrawl(opts.Crawl),
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed ^ 0x6172726976616c)),
		clock: float64(opts.StartMillis),
		vers:  make(map[int64]int),
	}
}

// Crawl returns the underlying record generator (for schemas and
// predicates).
func (s *ArrivalStream) Crawl() *Crawl { return s.crawl }

// Seen returns the number of distinct URLs crawled so far.
func (s *ArrivalStream) Seen() int64 { return s.nextIdx }

// Next returns the next arrival. Arrival times are nondecreasing.
func (s *ArrivalStream) Next() Arrival {
	s.clock += s.rng.ExpFloat64() * 1000 / s.opts.RatePerSec
	millis := int64(s.clock)
	var idx int64
	var ver int
	if s.nextIdx > 0 && s.rng.Float64() < s.opts.RecrawlFraction {
		idx = s.rng.Int63n(s.nextIdx)
		ver = s.vers[idx] + 1
	} else {
		idx = s.nextIdx
		s.nextIdx++
	}
	s.vers[idx] = ver
	rec := s.crawl.RecordVersion(idx, ver, millis)
	if s.opts.ContentSkew > 0 {
		// Redraw the body at a Pareto-tailed multiple of its drawn size;
		// exp(skew·Exp(1)) has tail index 1/skew. Capped so a single page
		// cannot dwarf the dataset.
		factor := math.Exp(s.opts.ContentSkew * s.rng.ExpFloat64())
		if factor > 32 {
			factor = 32
		}
		base := len(rec.GetAt(6).([]byte))
		crng := recordRNG(s.opts.Seed^0x736b6577, idx*1000003+int64(ver))
		rec.SetAt(6, pageContent(crng, int(float64(base)*factor)))
	}
	return Arrival{Index: idx, Version: ver, Millis: millis, Rec: rec}
}
