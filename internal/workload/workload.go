// Package workload generates the paper's four experimental datasets,
// deterministically from a seed:
//
//   - Synthetic (Section 6.2): 6 random strings (20-40 chars), 6 random
//     integers in [1,10000], and a 10-entry map with 4-char string keys and
//     integer values. 57 GB of this in SEQ format drives Figure 7/9.
//   - Crawl (Section 6.3, Figure 2's URLInfo): an intranet-crawl simulacrum
//     with ~6% of URLs matching "ibm.com/jp", HTTP-header metadata maps, an
//     annotations map, an inlink array, and a several-KB content column
//     that dominates record size. 6.4 TB of this drives Table 1.
//   - Wide (Appendix B.5): records of 20/40/80 string columns, 30 chars
//     each, for the record-width sweep of Figure 11.
//   - TypedFrac (Appendix B.1): 1000-byte records in which a fraction f of
//     the bytes are typed values (integers, doubles, or map entries) and
//     the rest is an opaque byte array, for the deserialization-rate
//     microbenchmark of Figure 8.
//
// Generators return the record at any index i without generating its
// predecessors, so laptop-scale samples extrapolate cleanly.
package workload

import (
	"fmt"
	"math/rand"

	"colmr/internal/serde"
)

// recordRNG derives an independent generator for record i: samples are
// reproducible and index-addressable.
func recordRNG(seed int64, i int64) *rand.Rand {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return rand.New(rand.NewSource(int64(h)))
}

const readableASCII = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,-_/"

func randReadable(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = readableASCII[rng.Intn(len(readableASCII))]
	}
	return string(b)
}

// Synthetic generates the Section 6.2 microbenchmark dataset.
type Synthetic struct {
	seed   int64
	schema *serde.Schema
}

// NewSynthetic returns the Section 6.2 generator.
func NewSynthetic(seed int64) *Synthetic {
	fields := make([]serde.Field, 0, 13)
	for i := 0; i < 6; i++ {
		fields = append(fields, serde.Field{Name: fmt.Sprintf("str%d", i), Type: serde.String()})
	}
	for i := 0; i < 6; i++ {
		fields = append(fields, serde.Field{Name: fmt.Sprintf("int%d", i), Type: serde.Int()})
	}
	fields = append(fields, serde.Field{Name: "map0", Type: serde.MapOf(serde.Int())})
	return &Synthetic{seed: seed, schema: serde.RecordOf("Synthetic", fields...)}
}

// Schema returns the dataset schema.
func (s *Synthetic) Schema() *serde.Schema { return s.schema }

// Record generates record i.
func (s *Synthetic) Record(i int64) *serde.GenericRecord {
	rng := recordRNG(s.seed, i)
	rec := serde.NewRecord(s.schema)
	for f := 0; f < 6; f++ {
		rec.SetAt(f, randReadable(rng, 20+rng.Intn(21))) // 20-40 chars
	}
	for f := 0; f < 6; f++ {
		rec.SetAt(6+f, int32(1+rng.Intn(10000)))
	}
	m := make(map[string]any, 10)
	for len(m) < 10 {
		m[randReadable(rng, 4)] = int32(rng.Intn(10000))
	}
	rec.SetAt(12, m)
	return rec
}

// CrawlOptions parameterizes the crawl generator.
type CrawlOptions struct {
	// Seed makes the dataset reproducible.
	Seed int64
	// Selectivity is the fraction of URLs containing MatchPattern
	// (the paper's predicate selects ~6%).
	Selectivity float64
	// ContentBytes is the mean size of the content column ("several KB of
	// data for each record").
	ContentBytes int
	// Inlinks is the mean length of the inlink array.
	Inlinks int
}

// MatchPattern is the substring the paper's example job filters on.
const MatchPattern = "ibm.com/jp"

func (o CrawlOptions) withDefaults() CrawlOptions {
	if o.Selectivity == 0 {
		o.Selectivity = 0.06
	}
	if o.ContentBytes == 0 {
		// Crawled pages are content-dominated: the paper's job that never
		// touches content reads only ~1.5% of the dataset (96 GB of
		// 6.4 TB), which fixes the content:metadata proportions.
		o.ContentBytes = 12000
	}
	if o.Inlinks == 0 {
		o.Inlinks = 8
	}
	return o
}

// Crawl generates URLInfo records per Figure 2.
type Crawl struct {
	opts   CrawlOptions
	schema *serde.Schema
}

// CrawlSchema is the paper's Figure 2 schema.
var crawlSchemaDSL = `
URLInfo {
  string url,
  string srcUrl,
  time fetchTime,
  string[] inlink,
  map<string> metadata,
  map<string> annotations,
  bytes content
}`

// NewCrawl returns a crawl-dataset generator.
func NewCrawl(opts CrawlOptions) *Crawl {
	return &Crawl{opts: opts.withDefaults(), schema: serde.MustParse(crawlSchemaDSL)}
}

// Schema returns the URLInfo schema.
func (c *Crawl) Schema() *serde.Schema { return c.schema }

// ContentTypes is the universe of content-type values — the answer set of
// the paper's "distinct content-types" job.
var ContentTypes = []string{
	"text/html", "text/plain", "application/pdf", "application/msword",
	"application/xml", "image/jpeg", "text/css", "application/javascript",
}

// metadataKeys is the limited key universe that makes metadata maps
// dictionary-compressible (Section 5.3).
var metadataKeys = []string{
	"content-length", "server", "last-modified", "etag", "cache-control",
	"expires", "vary", "connection", "x-powered-by",
}

var annotationKeys = []string{
	"lang", "charset", "title-tokens", "outdegree", "pagerank-bucket", "mime-guess",
}

var hosts = []string{
	"w3.example.com", "intranet.example.com", "wiki.example.com",
	"portal.example.com", "docs.example.com", "hr.example.com",
	"eng.example.com", "support.example.com",
}

// Matches reports whether record i's URL contains MatchPattern, without
// generating the record.
func (c *Crawl) Matches(i int64) bool {
	rng := recordRNG(c.opts.Seed, i)
	return rng.Float64() < c.opts.Selectivity
}

// Record generates record i.
func (c *Crawl) Record(i int64) *serde.GenericRecord {
	rng := recordRNG(c.opts.Seed, i)
	match := rng.Float64() < c.opts.Selectivity
	rec := serde.NewRecord(c.schema)

	host := hosts[rng.Intn(len(hosts))]
	path := fmt.Sprintf("/pages/%d/%s.html", i, randReadable(rng, 6))
	if match {
		rec.SetAt(0, "http://www.ibm.com/jp"+path)
	} else {
		rec.SetAt(0, "http://"+host+path)
	}
	rec.SetAt(1, "http://"+hosts[rng.Intn(len(hosts))]+"/index.html")
	rec.SetAt(2, int64(1293840000000+i*1000)) // fetchTime

	nIn := rng.Intn(2*c.opts.Inlinks + 1)
	inlinks := make([]any, nIn)
	for j := range inlinks {
		inlinks[j] = "http://" + hosts[rng.Intn(len(hosts))] + "/" + randReadable(rng, 8)
	}
	rec.SetAt(3, inlinks)

	meta := map[string]any{
		"content-type": ContentTypes[rng.Intn(len(ContentTypes))],
	}
	for _, k := range metadataKeys {
		if rng.Float64() < 0.35 {
			meta[k] = randReadable(rng, 4+rng.Intn(8))
		}
	}
	rec.SetAt(4, meta)

	ann := map[string]any{}
	for _, k := range annotationKeys {
		if rng.Float64() < 0.5 {
			ann[k] = randReadable(rng, 3+rng.Intn(10))
		}
	}
	rec.SetAt(5, ann)

	n := c.opts.ContentBytes/2 + rng.Intn(c.opts.ContentBytes+1)
	rec.SetAt(6, pageContent(rng, n))
	return rec
}

// RecordVersion generates version ver of record i — the page as a recrawl
// at fetchTime sees it. The URL (and srcUrl) are the record's identity and
// never change; the volatile fields — fetchTime, freshness metadata, and
// the page body — are redrawn from a version-salted stream, so successive
// crawls of one URL produce genuinely different bytes. Version 0 with
// fetchTime 0 is exactly Record(i).
func (c *Crawl) RecordVersion(i int64, ver int, fetchTime int64) *serde.GenericRecord {
	rec := c.Record(i)
	if fetchTime != 0 {
		rec.SetAt(2, fetchTime)
	}
	if ver == 0 {
		return rec
	}
	rng := recordRNG(c.opts.Seed^0x7663726177, i*1000003+int64(ver))
	meta := rec.GetAt(4).(map[string]any)
	meta["last-modified"] = randReadable(rng, 8)
	if rng.Float64() < 0.5 {
		meta["etag"] = randReadable(rng, 6)
	}
	n := c.opts.ContentBytes/2 + rng.Intn(c.opts.ContentBytes+1)
	rec.SetAt(6, pageContent(rng, n))
	return rec
}

// contentVocab is the word pool page bodies are drawn from. Natural-language
// pages compress 2-3x with an LZ77 codec; sampling words from a small
// vocabulary (rather than random characters) reproduces that ratio, which
// the SEQ-custom and compressed-CIF variants of Table 1 depend on.
var contentVocab = func() []string {
	rng := rand.New(rand.NewSource(424242))
	words := make([]string, 512)
	for i := range words {
		words[i] = randReadable(rng, 3+rng.Intn(8))
	}
	return words
}()

var contentTags = []string{"<div>", "</div>", "<p>", "</p>", "<a href=\"", "\">", "</a>", "<span>", "</span>", "<li>"}

// pageContent builds n bytes of HTML-ish text: markup interspersed with
// vocabulary words.
func pageContent(rng *rand.Rand, n int) []byte {
	content := make([]byte, 0, n+16)
	for len(content) < n {
		content = append(content, contentTags[rng.Intn(len(contentTags))]...)
		for w := 0; w < 4 && len(content) < n; w++ {
			content = append(content, contentVocab[rng.Intn(len(contentVocab))]...)
			content = append(content, ' ')
		}
	}
	return content[:n]
}

// Wide generates Appendix B.5's wide-record datasets.
type Wide struct {
	seed   int64
	schema *serde.Schema
}

// NewWide returns a generator with the given number of 30-char string
// columns.
func NewWide(seed int64, columns int) *Wide {
	fields := make([]serde.Field, columns)
	for i := range fields {
		fields[i] = serde.Field{Name: fmt.Sprintf("c%02d", i), Type: serde.String()}
	}
	return &Wide{seed: seed, schema: serde.RecordOf("Wide", fields...)}
}

// Schema returns the dataset schema.
func (w *Wide) Schema() *serde.Schema { return w.schema }

// Record generates record i.
func (w *Wide) Record(i int64) *serde.GenericRecord {
	rng := recordRNG(w.seed, i)
	rec := serde.NewRecord(w.schema)
	for f := range w.schema.Fields {
		rec.SetAt(f, randReadable(rng, 30))
	}
	return rec
}

// TypedKind selects the typed portion of a TypedFrac record.
type TypedKind int

// Typed portions for Figure 8.
const (
	TypedInts TypedKind = iota
	TypedDoubles
	TypedMaps
)

// String returns the kind's display name.
func (k TypedKind) String() string {
	switch k {
	case TypedInts:
		return "integers"
	case TypedDoubles:
		return "doubles"
	case TypedMaps:
		return "maps"
	default:
		return fmt.Sprintf("typedkind(%d)", int(k))
	}
}

// TypedFrac generates Appendix B.1's records: RecordBytes bytes per record,
// a fraction f of which is typed data and the rest an opaque byte array.
type TypedFrac struct {
	seed   int64
	kind   TypedKind
	f      float64
	schema *serde.Schema
}

// RecordBytes is the Appendix B.1 record size.
const RecordBytes = 1000

// NewTypedFrac returns a generator for the given typed kind and fraction
// f in [0,1].
func NewTypedFrac(seed int64, kind TypedKind, f float64) *TypedFrac {
	var typed *serde.Schema
	switch kind {
	case TypedInts:
		typed = serde.ArrayOf(serde.Int())
	case TypedDoubles:
		typed = serde.ArrayOf(serde.Double())
	case TypedMaps:
		typed = serde.ArrayOf(serde.MapOf(serde.Int()))
	}
	schema := serde.RecordOf("TypedFrac",
		serde.Field{Name: "typed", Type: typed},
		serde.Field{Name: "pad", Type: serde.Bytes()},
	)
	return &TypedFrac{seed: seed, kind: kind, f: f, schema: schema}
}

// Schema returns the dataset schema.
func (t *TypedFrac) Schema() *serde.Schema { return t.schema }

// Record generates record i: ~f*RecordBytes bytes of typed values, the
// remainder an uninterpreted byte array.
func (t *TypedFrac) Record(i int64) *serde.GenericRecord {
	rng := recordRNG(t.seed, i)
	rec := serde.NewRecord(t.schema)
	typedBytes := int(t.f * RecordBytes)
	var arr []any
	switch t.kind {
	case TypedInts:
		// ~5 encoded bytes per random int32.
		for n := 0; n < typedBytes; n += 5 {
			arr = append(arr, int32(rng.Int63()))
		}
	case TypedDoubles:
		for n := 0; n < typedBytes; n += 8 {
			arr = append(arr, rng.NormFloat64())
		}
	case TypedMaps:
		// The paper's maps: 4 entries, short mutable-string keys, int
		// values — about 40 encoded bytes per map.
		for n := 0; n < typedBytes; n += 40 {
			m := make(map[string]any, 4)
			for len(m) < 4 {
				m[randReadable(rng, 5)] = int32(rng.Intn(1000))
			}
			arr = append(arr, m)
		}
	}
	rec.SetAt(0, arr)
	pad := make([]byte, RecordBytes-typedBytes)
	rng.Read(pad)
	rec.SetAt(1, pad)
	return rec
}
