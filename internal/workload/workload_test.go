package workload

import (
	"math"
	"strings"
	"testing"

	"colmr/internal/serde"
)

func TestSyntheticMatchesPaperShape(t *testing.T) {
	g := NewSynthetic(1)
	s := g.Schema()
	if len(s.Fields) != 13 {
		t.Fatalf("fields = %d, want 13 (6 strings + 6 ints + 1 map)", len(s.Fields))
	}
	rec := g.Record(42)
	for i := 0; i < 6; i++ {
		v := rec.GetAt(i).(string)
		if len(v) < 20 || len(v) > 40 {
			t.Errorf("str%d length %d outside [20,40]", i, len(v))
		}
	}
	for i := 6; i < 12; i++ {
		v := rec.GetAt(i).(int32)
		if v < 1 || v > 10000 {
			t.Errorf("int%d = %d outside [1,10000]", i-6, v)
		}
	}
	m := rec.GetAt(12).(map[string]any)
	if len(m) != 10 {
		t.Errorf("map has %d entries, want 10", len(m))
	}
	for k := range m {
		if len(k) != 4 {
			t.Errorf("map key %q length %d, want 4", k, len(k))
		}
	}
}

func TestDeterminismAndIndexAddressability(t *testing.T) {
	g1 := NewSynthetic(7)
	g2 := NewSynthetic(7)
	// Same index, independent generators, any order.
	a := g1.Record(100)
	g2.Record(3)
	b := g2.Record(100)
	if !serde.RecordsEqual(a, b) {
		t.Error("synthetic generator is not index-addressable")
	}
	if serde.RecordsEqual(g1.Record(1), g1.Record(2)) {
		t.Error("adjacent records identical")
	}
	if serde.RecordsEqual(NewSynthetic(1).Record(5), NewSynthetic(2).Record(5)) {
		t.Error("different seeds produced identical records")
	}
}

func TestCrawlSchemaIsFigure2(t *testing.T) {
	c := NewCrawl(CrawlOptions{Seed: 1})
	s := c.Schema()
	want := []string{"url", "srcUrl", "fetchTime", "inlink", "metadata", "annotations", "content"}
	got := s.FieldNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("fields = %v, want %v", got, want)
	}
	if s.Field("metadata").Kind != serde.KindMap || s.Field("inlink").Kind != serde.KindArray {
		t.Error("complex types wrong")
	}
}

func TestCrawlSelectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 20k multi-KB records; skipped in -short mode")
	}
	c := NewCrawl(CrawlOptions{Seed: 3, Selectivity: 0.06})
	const n = 20000
	matches := 0
	for i := int64(0); i < n; i++ {
		rec := c.Record(i)
		url, _ := rec.Get("url")
		has := strings.Contains(url.(string), MatchPattern)
		if has != c.Matches(i) {
			t.Fatalf("Matches(%d) disagrees with generated URL", i)
		}
		if has {
			matches++
		}
	}
	frac := float64(matches) / n
	if math.Abs(frac-0.06) > 0.01 {
		t.Errorf("selectivity = %.4f, want ~0.06", frac)
	}
}

func TestCrawlContentDominates(t *testing.T) {
	c := NewCrawl(CrawlOptions{Seed: 5})
	var contentBytes, totalBytes int64
	for i := int64(0); i < 200; i++ {
		rec := c.Record(i)
		enc, err := serde.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		totalBytes += int64(len(enc))
		ct, _ := rec.Get("content")
		contentBytes += int64(len(ct.([]byte)))
	}
	if frac := float64(contentBytes) / float64(totalBytes); frac < 0.6 {
		t.Errorf("content is %.2f of record bytes; paper's content column dominates", frac)
	}
	rec := c.Record(0)
	md, _ := rec.Get("metadata")
	if md.(map[string]any)["content-type"] == nil {
		t.Error("metadata missing content-type")
	}
}

func TestCrawlContentCompressible(t *testing.T) {
	// The content column must be mildly compressible, like real pages —
	// the SEQ-custom and CIF-LZO variants depend on it.
	c := NewCrawl(CrawlOptions{Seed: 9})
	rec := c.Record(1)
	ct, _ := rec.Get("content")
	content := ct.([]byte)
	if len(content) < 1000 {
		t.Fatalf("content only %d bytes", len(content))
	}
	counts := map[byte]int{}
	for _, b := range content {
		counts[b]++
	}
	if len(counts) > 120 {
		t.Errorf("content uses %d distinct bytes; should be readable-ish", len(counts))
	}
}

func TestWide(t *testing.T) {
	for _, cols := range []int{20, 40, 80} {
		w := NewWide(1, cols)
		if len(w.Schema().Fields) != cols {
			t.Fatalf("columns = %d, want %d", len(w.Schema().Fields), cols)
		}
		rec := w.Record(9)
		for i := 0; i < cols; i++ {
			if len(rec.GetAt(i).(string)) != 30 {
				t.Fatalf("column %d length != 30", i)
			}
		}
	}
}

func TestTypedFracSizes(t *testing.T) {
	for _, kind := range []TypedKind{TypedInts, TypedDoubles, TypedMaps} {
		for _, f := range []float64{0, 0.2, 0.6, 1.0} {
			g := NewTypedFrac(11, kind, f)
			rec := g.Record(3)
			enc, err := serde.EncodeRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			// Encoded size should be within 30% of the nominal 1000 bytes.
			if len(enc) < 700 || len(enc) > 1400 {
				t.Errorf("%v f=%.1f: encoded %d bytes, want ~%d", kind, f, len(enc), RecordBytes)
			}
			pad, _ := rec.Get("pad")
			wantPad := int(float64(RecordBytes) * (1 - f))
			if math.Abs(float64(len(pad.([]byte))-wantPad)) > 1 {
				t.Errorf("%v f=%.1f: pad = %d, want %d", kind, f, len(pad.([]byte)), wantPad)
			}
		}
	}
}

func TestTypedFracZeroHasNoTyped(t *testing.T) {
	g := NewTypedFrac(1, TypedMaps, 0)
	rec := g.Record(0)
	typed, _ := rec.Get("typed")
	if len(typed.([]any)) != 0 {
		t.Errorf("f=0 produced %d typed values", len(typed.([]any)))
	}
}

func TestTypedKindString(t *testing.T) {
	if TypedInts.String() != "integers" || TypedMaps.String() != "maps" {
		t.Error("kind names wrong")
	}
}
